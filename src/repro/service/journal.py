"""A durable JSON-lines journal of service-job state transitions.

The :class:`JobJournal` is the persistence layer behind
:class:`~repro.service.app.CompilationService`: every job transition
(``submitted`` → ``running`` → ``done``/``failed``/``cancelled``) is
appended as one JSON object per line to a file under the service's cache
directory.  On startup the service replays the journal
(:func:`replay_journal` folds the event log into one final state per job
id) and rebuilds its job table:

* jobs whose last event is **terminal** are restored as finished records
  (status, summary, error and timestamps survive; the streamed outcome
  buffers do not);
* jobs that were **queued or running** when the process died are either
  resubmitted from their journaled manifest document — recompilation is
  then typically free, because the schedule cache lives in the same
  directory — or marked ``failed("restart")`` when the manifest was not
  journalable (submissions carrying live Python objects) or the service
  was configured not to retry.

The format is append-only and crash-tolerant: a torn final line (the
process died mid-write) is ignored on replay, and every line carries a
``"v"`` format marker so future versions can skip records they do not
understand instead of refusing the whole file.  Because append-only
grows without bound, the service **compacts** the file right after
replay on every startup (:func:`compact_journal`, disable with
``repro serve --no-compact``): the event log is rewritten to only the
live/terminal state replay actually needs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

#: Format marker written on every journal line.
JOURNAL_VERSION = 1

#: Events that leave a job in a terminal state.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class JobJournal:
    """Append-only, thread-safe JSON-lines journal at ``path``.

    Lines are flushed on every append — a service killed between
    submissions loses at most the line being written, never an
    acknowledged transition.
    """

    def __init__(self, path: "Path | str", max_bytes: "int | None" = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = self.path.open("a", encoding="utf-8")
        # Per-instance write accounting (monotonic while the journal is
        # open) — the health endpoint and the metrics collector read
        # these instead of re-scanning the file.
        self.events_appended = 0
        self.bytes_written = 0
        #: Size threshold (bytes) above which :meth:`append` rotates the
        #: file in place: replay → compact → reopen.  ``None`` disables
        #: rotation (the startup compaction is then the only trim).
        self.max_bytes = max_bytes
        #: In-place rotations performed by this instance
        #: (``repro_journal_rotations_total`` on ``/v1/metrics``).
        self.rotations = 0
        # Thrash guard: when live state alone exceeds ``max_bytes``,
        # compaction cannot shrink below the threshold — without this,
        # every subsequent append would pay a full rewrite.  Rotation
        # requires at least ``max_bytes // 2`` fresh bytes since the
        # last one.
        self._bytes_since_rotate = 0

    def size_bytes(self) -> int:
        """Current on-disk size of the journal file (0 when missing)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def append(self, event: str, job_id: str, **fields: Any) -> None:
        """Record one transition; unserialisable extras are dropped."""
        record: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "event": event,
            "job_id": job_id,
            "at": time.time(),
        }
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError):
            # A field (e.g. a manifest holding live objects) resists JSON:
            # journal the transition without it rather than not at all.
            record = {
                key: value
                for key, value in record.items()
                if _json_safe(value)
            }
            line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()
            self.events_appended += 1
            self.bytes_written += len(line) + 1
            self._bytes_since_rotate += len(line) + 1
            if (
                self.max_bytes is not None
                and self._bytes_since_rotate > self.max_bytes // 2
                and self.size_bytes() > self.max_bytes
            ):
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Compact the file in place while the service keeps running.

        Called with the lock held: the append handle is closed, the log
        is folded and rewritten (atomic temp + replace, like the startup
        compaction), and a fresh append handle is opened on the
        compacted file.  Appends from other threads simply queue on the
        lock for the few milliseconds this takes.  A rewrite failure is
        swallowed — the original journal is intact (the replace is
        atomic) and the only cost is retrying at the next threshold.
        """
        self._file.close()
        try:
            compact_journal(self.path)
            self.rotations += 1
        except OSError:
            pass
        finally:
            self._file = self.path.open("a", encoding="utf-8")
            self._bytes_since_rotate = 0

    def flush(self) -> None:
        with self._lock:
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _json_safe(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def iter_journal(path: "Path | str") -> Iterator[dict[str, Any]]:
    """Yield parsed journal records, skipping torn or foreign lines."""
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a crashed writer — or garbage.
                # Either way the records before it are intact; skip it.
                continue
            if not isinstance(record, dict) or "event" not in record:
                continue
            if record.get("v") != JOURNAL_VERSION:
                continue
            yield record


def replay_journal(path: "Path | str") -> "list[dict[str, Any]]":
    """Fold the event log into one final state per job, submission order.

    Each returned dict has the shape::

        {"job_id", "status", "created_at", "priority", "total_jobs",
         "spec_rows", "manifest", "started_at", "finished_at",
         "summary", "error"}

    ``status`` is the last journaled state (``queued`` when only the
    submission made it to disk).  ``manifest`` is the document journaled
    at submission time, or ``None`` when it was not JSON-serialisable.
    """
    states: "dict[str, dict[str, Any]]" = {}
    order: list[str] = []
    for record in iter_journal(path):
        job_id = record.get("job_id")
        if not isinstance(job_id, str):
            continue
        event = record["event"]
        if event == "submitted":
            if job_id not in states:
                order.append(job_id)
            # A resubmission after a failure re-journals "submitted":
            # reset the folded state so a stale error does not stick.
            states[job_id] = {
                "job_id": job_id,
                "status": "queued",
                "created_at": record.get("created_at", record.get("at")),
                "priority": int(record.get("priority", 0)),
                "total_jobs": int(record.get("jobs", 0)),
                "spec_rows": record.get("specs") or [],
                "manifest": record.get("manifest"),
                "started_at": None,
                "finished_at": None,
                "summary": None,
                "error": None,
            }
            continue
        state = states.get(job_id)
        if state is None:
            # A transition without its submission (journal truncated at
            # the head, e.g. rotated): nothing to rebuild from.
            continue
        if event == "running":
            state["status"] = "running"
            state["started_at"] = record.get("at")
        elif event in _TERMINAL_EVENTS:
            state["status"] = event
            state["finished_at"] = record.get("at")
            if record.get("summary") is not None:
                state["summary"] = record["summary"]
            if record.get("error") is not None:
                state["error"] = record["error"]
    return [states[job_id] for job_id in order]


def compact_journal(
    path: "Path | str", states: "list[dict[str, Any]] | None" = None
) -> "tuple[int, int]":
    """Rewrite the journal to the minimal events reproducing its replay.

    The journal is append-only, so a long-lived service accumulates one
    line per transition — including every superseded resubmission —
    forever.  Compaction folds the log (:func:`replay_journal`, unless
    the caller already has the ``states``) and rewrites the file with
    only what replay needs per job: its ``submitted`` event, a
    ``running`` event when it had started, and its terminal event with
    the surviving summary/error.  Torn lines and foreign-version records
    disappear with the rewrite.

    The rewrite is atomic (temp file + replace), so a crash mid-compact
    leaves the original journal intact.  Returns ``(events_before,
    events_after)``; a missing file is a no-op ``(0, 0)``.

    Only safe while no :class:`JobJournal` has the file open for append
    — the service compacts between replaying and reopening on startup.
    """
    path = Path(path)
    if not path.exists():
        return 0, 0
    events_before = sum(1 for _ in iter_journal(path))
    if states is None:
        states = replay_journal(path)
    lines: list[str] = []
    for state in states:
        submitted: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "event": "submitted",
            "job_id": state["job_id"],
            "at": state["created_at"],
            "created_at": state["created_at"],
            "priority": state["priority"],
            "jobs": state["total_jobs"],
            "specs": state["spec_rows"],
            "manifest": state["manifest"],
        }
        lines.append(json.dumps(submitted, sort_keys=True))
        if state["started_at"] is not None:
            running = {
                "v": JOURNAL_VERSION,
                "event": "running",
                "job_id": state["job_id"],
                "at": state["started_at"],
            }
            lines.append(json.dumps(running, sort_keys=True))
        if state["status"] in _TERMINAL_EVENTS:
            terminal: dict[str, Any] = {
                "v": JOURNAL_VERSION,
                "event": state["status"],
                "job_id": state["job_id"],
                "at": state["finished_at"],
            }
            if state["summary"] is not None:
                terminal["summary"] = state["summary"]
            if state["error"] is not None:
                terminal["error"] = state["error"]
            lines.append(json.dumps(terminal, sort_keys=True))
    tmp = path.with_suffix(f".compact.{os.getpid()}.tmp")
    tmp.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    tmp.replace(path)
    return events_before, len(lines)
