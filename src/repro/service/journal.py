"""A durable JSON-lines journal of service-job state transitions.

The :class:`JobJournal` is the persistence layer behind
:class:`~repro.service.app.CompilationService`: every job transition
(``submitted`` → ``running`` → ``done``/``failed``/``cancelled``) is
appended as one JSON object per line to a file under the service's cache
directory.  On startup the service replays the journal
(:func:`replay_journal` folds the event log into one final state per job
id) and rebuilds its job table:

* jobs whose last event is **terminal** are restored as finished records
  (status, summary, error and timestamps survive; the streamed outcome
  buffers do not);
* jobs that were **queued or running** when the process died are either
  resubmitted from their journaled manifest document — recompilation is
  then typically free, because the schedule cache lives in the same
  directory — or marked ``failed("restart")`` when the manifest was not
  journalable (submissions carrying live Python objects) or the service
  was configured not to retry.

The format is append-only and crash-tolerant: a torn final line (the
process died mid-write) is ignored on replay, and every line carries a
``"v"`` format marker so future versions can skip records they do not
understand instead of refusing the whole file.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterator

#: Format marker written on every journal line.
JOURNAL_VERSION = 1

#: Events that leave a job in a terminal state.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class JobJournal:
    """Append-only, thread-safe JSON-lines journal at ``path``.

    Lines are flushed on every append — a service killed between
    submissions loses at most the line being written, never an
    acknowledged transition.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = self.path.open("a", encoding="utf-8")

    def append(self, event: str, job_id: str, **fields: Any) -> None:
        """Record one transition; unserialisable extras are dropped."""
        record: dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "event": event,
            "job_id": job_id,
            "at": time.time(),
        }
        record.update(fields)
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError):
            # A field (e.g. a manifest holding live objects) resists JSON:
            # journal the transition without it rather than not at all.
            record = {
                key: value
                for key, value in record.items()
                if _json_safe(value)
            }
            line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def flush(self) -> None:
        with self._lock:
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _json_safe(value: Any) -> bool:
    try:
        json.dumps(value)
    except (TypeError, ValueError):
        return False
    return True


def iter_journal(path: "Path | str") -> Iterator[dict[str, Any]]:
    """Yield parsed journal records, skipping torn or foreign lines."""
    path = Path(path)
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a crashed writer — or garbage.
                # Either way the records before it are intact; skip it.
                continue
            if not isinstance(record, dict) or "event" not in record:
                continue
            if record.get("v") != JOURNAL_VERSION:
                continue
            yield record


def replay_journal(path: "Path | str") -> "list[dict[str, Any]]":
    """Fold the event log into one final state per job, submission order.

    Each returned dict has the shape::

        {"job_id", "status", "created_at", "priority", "total_jobs",
         "spec_rows", "manifest", "started_at", "finished_at",
         "summary", "error"}

    ``status`` is the last journaled state (``queued`` when only the
    submission made it to disk).  ``manifest`` is the document journaled
    at submission time, or ``None`` when it was not JSON-serialisable.
    """
    states: "dict[str, dict[str, Any]]" = {}
    order: list[str] = []
    for record in iter_journal(path):
        job_id = record.get("job_id")
        if not isinstance(job_id, str):
            continue
        event = record["event"]
        if event == "submitted":
            if job_id not in states:
                order.append(job_id)
            # A resubmission after a failure re-journals "submitted":
            # reset the folded state so a stale error does not stick.
            states[job_id] = {
                "job_id": job_id,
                "status": "queued",
                "created_at": record.get("created_at", record.get("at")),
                "priority": int(record.get("priority", 0)),
                "total_jobs": int(record.get("jobs", 0)),
                "spec_rows": record.get("specs") or [],
                "manifest": record.get("manifest"),
                "started_at": None,
                "finished_at": None,
                "summary": None,
                "error": None,
            }
            continue
        state = states.get(job_id)
        if state is None:
            # A transition without its submission (journal truncated at
            # the head, e.g. rotated): nothing to rebuild from.
            continue
        if event == "running":
            state["status"] = "running"
            state["started_at"] = record.get("at")
        elif event in _TERMINAL_EVENTS:
            state["status"] = event
            state["finished_at"] = record.get("at")
            if record.get("summary") is not None:
                state["summary"] = record["summary"]
            if record.get("error") is not None:
                state["error"] = record["error"]
    return [states[job_id] for job_id in order]
