"""The stdlib HTTP front-end over :class:`CompilationService`.

Endpoints (all JSON; see ``docs/service.md`` for schemas and examples):

==========  =================================  =====================================
method      path                               meaning
==========  =================================  =====================================
``POST``    ``/v1/jobs``                       submit a manifest body, get a job id
``GET``     ``/v1/jobs``                       list submitted jobs (paginated)
``GET``     ``/v1/jobs/<id>``                  one job's status
``DELETE``  ``/v1/jobs/<id>``                  cancel a queued/running job
``GET``     ``/v1/jobs/<id>/results``          **stream** results as JSON lines
``GET``     ``/v1/schedules/<fingerprint>``    cached-schedule lookup
``GET``     ``/v1/cache/<fingerprint>``        raw binary cache entry (network tier)
``PUT``     ``/v1/cache/<fingerprint>``        store a binary cache entry
``GET``     ``/v1/compilers``                  the compiler registry listing
``GET``     ``/v1/healthz``                    liveness + scheduler/cache counters
``GET``     ``/v1/metrics``                    Prometheus text-format metrics
==========  =================================  =====================================

``POST /v1/jobs`` takes an optional ``?priority=<int>`` (larger runs
earlier); ``GET /v1/jobs`` takes ``?offset=`` / ``?limit=``.  Cancelling
an already-finished job answers ``409 Conflict`` with the job's terminal
status in the error body.

``GET /v1/metrics`` serves the service's whole observability surface
(scheduler, cache, engine, journal and the HTTP layer itself) in
Prometheus text exposition format — every other endpoint is instrumented
with per-route request counters and latency histograms recorded into the
service's shared :class:`~repro.obs.metrics.MetricsRegistry`.

The results endpoint answers with ``Transfer-Encoding: chunked`` and
media type ``application/x-ndjson``: one JSON object per line, each
flushed as soon as the corresponding compilation lands, so a client
reads the first result while the rest of the batch is still compiling.

Errors are structured — every non-2xx response carries
``{"error": {"type", "message", "status"}}`` — and client-side problems
(malformed JSON, unknown compiler names, bad device specs: everything
:class:`~repro.exceptions.ManifestError` covers) map to 400 rather than
500.

Built entirely on :mod:`http.server` (``ThreadingHTTPServer``); the
service has no dependencies beyond the standard library.
"""

from __future__ import annotations

import json
import logging
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.exceptions import ManifestError, ReproError
from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.service.app import CompilationService

logger = logging.getLogger("repro.service")

#: Request bodies larger than this are refused (413) instead of buffered.
MAX_BODY_BYTES = 16 * 1024 * 1024

_JOB_RESULTS = re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{16})/results$")
_JOB_STATUS = re.compile(r"^/v1/jobs/(?P<job_id>[0-9a-f]{16})$")
_SCHEDULE = re.compile(r"^/v1/schedules/(?P<fingerprint>[0-9a-f]{16,64})$")
_CACHE_ENTRY = re.compile(r"^/v1/cache/(?P<fingerprint>[0-9a-f]{16,64})$")


def _route_template(path: str) -> str:
    """Collapse a request path onto its route template for metric labels.

    Raw paths would explode label cardinality (every job id a new
    series), so the HTTP metrics label by template instead; unknown
    paths share one ``other`` bucket for the same reason.
    """
    if path in (
        "/v1/jobs",
        "/v1/compilers",
        "/v1/healthz",
        "/v1/metrics",
    ):
        return path
    if _JOB_RESULTS.match(path):
        return "/v1/jobs/{id}/results"
    if _JOB_STATUS.match(path):
        return "/v1/jobs/{id}"
    if _SCHEDULE.match(path):
        return "/v1/schedules/{fingerprint}"
    if _CACHE_ENTRY.match(path):
        return "/v1/cache/{fingerprint}"
    return "other"


def _encode(payload: object) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`ServiceServer`'s service."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"
    # Nagle off: on keep-alive connections the small header/chunk writes
    # otherwise collide with delayed ACKs into ~40 ms stalls per response.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> CompilationService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        """Route access logs through :mod:`logging` instead of stderr."""
        logger.debug("%s - %s", self.address_string(), format % args)

    def send_response(self, code: int, message: "str | None" = None) -> None:
        # Remember the status line for the per-request metrics recorded
        # in _dispatch; handlers answer through many paths, the status
        # line is the one thing they all emit.
        self._metrics_status = code
        super().send_response(code, message)

    def _send_json(self, status: int, payload: object) -> None:
        body = _encode(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Advertise the closure, so a pooling client discards this
            # connection instead of reusing a socket we are about to
            # shut (or one with an unread request body still on it).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, error_type: str, message: str) -> None:
        self._send_json(
            status,
            {"error": {"type": error_type, "message": message, "status": status}},
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("PUT")

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        self._metrics_status = 0  # no status line sent (client vanished)
        started = time.perf_counter()
        # A request body we never read would be parsed as the next
        # request line on a keep-alive connection.  Assume the worst
        # until a handler actually consumes it (those clear the flag),
        # so every other path answers with Connection: close.
        if (self.headers.get("Content-Length") or "0").strip() not in ("0", ""):
            self.close_connection = True
        try:
            self._route(method, url.path, parse_qs(url.query))
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True
        except ManifestError as exc:
            self._send_error_json(400, "manifest_error", str(exc))
        except ReproError as exc:
            self._send_error_json(500, "repro_error", str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            logger.exception("unhandled error serving %s %s", method, self.path)
            self._send_error_json(500, "internal_error", str(exc))
        finally:
            self._record_request(method, url.path, time.perf_counter() - started)

    def _record_request(self, method: str, path: str, seconds: float) -> None:
        """Feed the HTTP-layer instruments; never fails the request."""
        try:
            metrics = self.service.metrics
            route = _route_template(path)
            metrics.http_requests.labels(
                method=method, route=route, status=str(self._metrics_status)
            ).inc()
            # Streaming results hold the connection open while results
            # land, so that route's latency measures time-to-last-byte.
            metrics.http_latency.labels(method=method, route=route).observe(seconds)
        except Exception:  # noqa: BLE001 - metrics must never break serving
            logger.debug("failed to record request metrics", exc_info=True)

    def _route(self, method: str, path: str, query: dict[str, list[str]]) -> None:
        if path == "/v1/jobs":
            if method == "POST":
                return self._handle_submit(query)
            if method == "GET":
                return self._handle_list(query)
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _JOB_STATUS.match(path)
        if match:
            if method == "GET":
                return self._handle_status(match.group("job_id"))
            if method == "DELETE":
                return self._handle_cancel(match.group("job_id"))
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _CACHE_ENTRY.match(path)
        if match:
            if method == "GET":
                return self._handle_cache_get(match.group("fingerprint"))
            if method == "PUT":
                return self._handle_cache_put(match.group("fingerprint"))
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        if method != "GET":
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _JOB_RESULTS.match(path)
        if match:
            return self._handle_results(match.group("job_id"), query)
        match = _SCHEDULE.match(path)
        if match:
            return self._handle_schedule(match.group("fingerprint"))
        if path == "/v1/compilers":
            return self._send_json(200, {"compilers": self.service.compilers_payload()})
        if path == "/v1/healthz":
            return self._send_json(200, self.service.health_payload())
        if path == "/v1/metrics":
            return self._handle_metrics()
        return self._send_error_json(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _int_query(
        self, query: dict[str, list[str]], key: str, default: "int | None"
    ) -> "int | None":
        """Parse one integer query parameter; raises ``ValueError``."""
        if key not in query:
            return default
        return int(query[key][0])

    def _handle_list(self, query: dict[str, list[str]]) -> None:
        try:
            offset = self._int_query(query, "offset", 0)
            limit = self._int_query(query, "limit", None)
            payload = self.service.jobs_payload(offset=offset, limit=limit)
        except ValueError:
            return self._send_error_json(
                400, "bad_query", "offset/limit must be non-negative integers"
            )
        self._send_json(200, payload)

    def _handle_cancel(self, job_id: str) -> None:
        try:
            job, accepted = self.service.cancel(job_id)
        except KeyError:
            return self._send_error_json(404, "unknown_job", f"no job {job_id!r}")
        if not accepted:
            # Terminal before the request arrived: nothing to cancel.
            return self._send_error_json(
                409,
                "job_finished",
                f"job {job_id!r} already reached terminal state {job.status!r}",
            )
        self._send_json(
            200,
            {
                "job_id": job.job_id,
                "status": job.status,
                "cancel_requested": job.cancel_requested,
            },
        )

    def _handle_submit(self, query: dict[str, list[str]]) -> None:
        # Every early rejection below happens before the request body is
        # read.  On a keep-alive connection the unread body bytes would
        # be parsed as the next request line, so these responses must
        # also close the connection.
        def reject(status: int, error_type: str, message: str) -> None:
            self.close_connection = True
            self._send_error_json(status, error_type, message)

        try:
            priority = self._int_query(query, "priority", 0)
        except ValueError:
            return reject(400, "bad_query", "priority must be an integer")
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return reject(
                411, "length_required", "POST /v1/jobs needs a Content-Length header"
            )
        try:
            length = int(length_header)
        except ValueError:
            return reject(
                400, "bad_request", f"invalid Content-Length {length_header!r}"
            )
        if length < 0:
            return reject(400, "bad_request", "Content-Length cannot be negative")
        if length > MAX_BODY_BYTES:
            return reject(
                413,
                "payload_too_large",
                f"manifest bodies are capped at {MAX_BODY_BYTES} bytes",
            )
        body = self.rfile.read(length)
        self.close_connection = False  # body consumed; keep-alive is safe again
        job, resubmitted = self.service.submit_text(body, priority=priority)
        self._send_json(
            200 if resubmitted else 202,
            {
                "job_id": job.job_id,
                "status": job.status,
                "jobs": len(job.jobs),
                "resubmitted": resubmitted,
                "results_path": f"/v1/jobs/{job.job_id}/results",
            },
        )

    def _handle_metrics(self) -> None:
        body = self.service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle_status(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job is None:
            return self._send_error_json(404, "unknown_job", f"no job {job_id!r}")
        self._send_json(200, job.status_payload())

    def _handle_schedule(self, fingerprint: str) -> None:
        payload = self.service.schedule_payload(fingerprint)
        if payload is None:
            return self._send_error_json(
                404,
                "unknown_fingerprint",
                f"no cached schedule under compile fingerprint {fingerprint!r}",
            )
        self._send_json(200, payload)

    def _handle_cache_get(self, fingerprint: str) -> None:
        """Serve one cache entry as raw RCEN bytes (the network-tier GET)."""
        payload = self.service.cache_entry_bytes(fingerprint)
        if payload is None:
            return self._send_error_json(
                404, "unknown_fingerprint", f"no cache entry for {fingerprint!r}"
            )
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _handle_cache_put(self, fingerprint: str) -> None:
        """Accept one RCEN entry body into the local cache (network-tier PUT)."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True
            return self._send_error_json(
                411, "length_required", "PUT /v1/cache needs a Content-Length header"
            )
        try:
            length = int(length_header)
        except ValueError:
            self.close_connection = True
            return self._send_error_json(
                400, "bad_request", f"invalid Content-Length {length_header!r}"
            )
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            return self._send_error_json(
                413, "payload_too_large", f"cache entries are capped at {MAX_BODY_BYTES} bytes"
            )
        body = self.rfile.read(length)
        self.close_connection = False  # body consumed; keep-alive is safe again
        if not self.service.cache_store_bytes(fingerprint, body):
            return self._send_error_json(
                400, "bad_entry", "body is not a current-format binary cache entry"
            )
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _handle_results(self, job_id: str, query: dict[str, list[str]]) -> None:
        timeout: float | None = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"][0])
            except ValueError:
                return self._send_error_json(
                    400, "bad_query", "timeout must be a number of seconds"
                )
        try:
            # The fast path: each line arrives pre-encoded (the service
            # serialised every outcome record exactly once, when it
            # landed), so streaming — and re-streaming — writes cached
            # bytes straight to the wire.
            lines = self.service.stream_encoded(job_id, timeout=timeout)
        except KeyError:
            return self._send_error_json(404, "unknown_job", f"no job {job_id!r}")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            for line in lines:
                data = line + b"\n"
                self.wfile.write(b"%X\r\n%s\r\n" % (len(data), data))
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except TimeoutError:
            # Mid-stream, the status line is gone; terminating the chunked
            # body early is the only way left to signal the timeout.
            self.close_connection = True

    # BaseHTTPRequestHandler replies 501 for other verbs on its own.


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`CompilationService`.

    Handler threads are daemons, so a blocked streaming client never
    prevents interpreter exit; ``service`` is shared by every handler.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: "tuple[str, int]", service: CompilationService
    ) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    service: CompilationService | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    **service_kwargs: object,
) -> ServiceServer:
    """Build a ready-to-serve :class:`ServiceServer`.

    When ``service`` is omitted a fresh :class:`CompilationService` is
    created from ``service_kwargs`` (``workers``, ``cache_dir``, ...).
    ``port=0`` binds an ephemeral port — read it back from
    :attr:`ServiceServer.server_address` (tests do).
    """
    if service is None:
        service = CompilationService(**service_kwargs)  # type: ignore[arg-type]
    service.start()
    return ServiceServer((host, port), service)


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    **service_kwargs: object,
) -> None:
    """Run a compilation service until interrupted (the CLI entry point)."""
    server = make_server(host=host, port=port, **service_kwargs)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
