"""Async compilation service: an HTTP front-end over the batch runtime.

The service turns the library into something a user can submit work to
without importing Python: POST a job manifest, get a fingerprint-derived
job id back, stream each result as its compilation lands.  Six modules
split the responsibilities:

* :mod:`repro.service.jobs` — submission bookkeeping:
  :class:`ServiceJob` life cycle (queued/running/done/failed/cancelled),
  the thread-safe outcome buffer streams read from, cooperative
  cancellation, and deterministic job ids derived from
  :meth:`CompileJob.fingerprint`;
* :mod:`repro.service.scheduler` — :class:`ServiceScheduler`, the
  multi-slot scheduler running several submitted batches concurrently
  over the shared warm engine (priority order, FIFO within priority,
  cancellation between compilations, graceful drain on shutdown);
* :mod:`repro.service.journal` — :class:`JobJournal`, the JSON-lines
  journal under the cache directory that makes the job table durable:
  finished jobs survive restarts, interrupted ones are resubmitted from
  their journaled manifests (or marked failed), and the file is
  compacted after every replay (:func:`compact_journal`);
* :mod:`repro.service.app` — :class:`CompilationService`, the
  transport-independent core wiring engine + store + scheduler +
  journal together;
* :mod:`repro.service.server` — the stdlib ``http.server`` front-end:
  ``/v1/jobs`` (submit/list/status/cancel), the chunked JSON-lines
  ``/v1/jobs/<id>/results`` stream, ``/v1/schedules/<fingerprint>``,
  ``/v1/compilers``, ``/v1/healthz`` and the Prometheus-format
  ``/v1/metrics`` (see :mod:`repro.obs`), with structured 4xx errors
  for everything :class:`~repro.exceptions.ManifestError` covers;
* :mod:`repro.service.client` — :class:`ServiceClient`, the pooled
  keep-alive stdlib client used by tests, examples, CI and the
  ``repro submit`` / ``repro results`` / ``repro jobs`` CLI commands;
* :mod:`repro.service.results` — :class:`ResultStore`, the
  content-addressed durable result store: finished jobs' streamed bytes
  survive restarts and replay byte-identically with zero recompilation;
* :mod:`repro.service.fleet` — :class:`FleetRouter` /
  :func:`make_fleet`, the multi-process front door: submissions shard
  onto N worker processes by job-fingerprint hash, schedule caches tier
  onto the router's shared cache, and dead workers are respawned with
  failover in between (``repro serve --fleet N``).

Start one from the CLI (``python -m repro serve --port 8000``) or
in-process::

    from repro.service import CompilationService, ServiceClient, make_server
    import threading

    server = make_server(workers=2, port=0)          # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    receipt = client.submit({"jobs": [{"circuit": "qft_12", "device": "G-2x2"}]})
    for line in client.stream_results(receipt["job_id"]):
        print(line)

Everything is standard library — no web framework, no new dependencies.
"""

from repro.service.app import CompilationService
from repro.service.client import ServiceClient
from repro.service.fleet import FleetRouter, FleetServer, make_fleet, serve_fleet
from repro.service.jobs import JobStore, ServiceJob, job_batch_id
from repro.service.journal import JobJournal, compact_journal, replay_journal
from repro.service.results import ResultStore
from repro.service.scheduler import ServiceScheduler
from repro.service.server import ServiceServer, make_server, serve

__all__ = [
    "CompilationService",
    "FleetRouter",
    "FleetServer",
    "JobJournal",
    "JobStore",
    "ResultStore",
    "ServiceClient",
    "ServiceJob",
    "ServiceScheduler",
    "ServiceServer",
    "compact_journal",
    "job_batch_id",
    "make_fleet",
    "make_server",
    "replay_journal",
    "serve",
    "serve_fleet",
]
