"""Async compilation service: an HTTP front-end over the batch runtime.

The service turns the library into something a user can submit work to
without importing Python: POST a job manifest, get a fingerprint-derived
job id back, stream each result as its compilation lands.  Four modules
split the responsibilities:

* :mod:`repro.service.jobs` — submission bookkeeping:
  :class:`ServiceJob` life cycle (queued/running/done/failed), the
  thread-safe outcome buffer streams read from, and deterministic job
  ids derived from :meth:`CompileJob.fingerprint`;
* :mod:`repro.service.app` — :class:`CompilationService`, the
  transport-independent core owning the **warm**
  :class:`~repro.runtime.pool.BatchCompiler` (worker processes survive
  across submissions), the shared
  :class:`~repro.runtime.cache.ScheduleCache` and the FIFO executor;
* :mod:`repro.service.server` — the stdlib ``http.server`` front-end:
  ``/v1/jobs`` (submit/list/status), the chunked JSON-lines
  ``/v1/jobs/<id>/results`` stream, ``/v1/schedules/<fingerprint>``,
  ``/v1/compilers`` and ``/v1/healthz``, with structured 4xx errors for
  everything :class:`~repro.exceptions.ManifestError` covers;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin stdlib
  client used by tests, examples and CI.

Start one from the CLI (``python -m repro serve --port 8000``) or
in-process::

    from repro.service import CompilationService, ServiceClient, make_server
    import threading

    server = make_server(workers=2, port=0)          # ephemeral port
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    receipt = client.submit({"jobs": [{"circuit": "qft_12", "device": "G-2x2"}]})
    for line in client.stream_results(receipt["job_id"]):
        print(line)

Everything is standard library — no web framework, no new dependencies.
"""

from repro.service.app import CompilationService
from repro.service.client import ServiceClient
from repro.service.jobs import JobStore, ServiceJob, job_batch_id
from repro.service.server import ServiceServer, make_server, serve

__all__ = [
    "CompilationService",
    "JobStore",
    "ServiceClient",
    "ServiceJob",
    "ServiceServer",
    "job_batch_id",
    "make_server",
    "serve",
]
