"""The compilation service core, independent of any transport.

:class:`CompilationService` owns the long-lived pieces the HTTP
front-end (and any embedding application) shares:

* a **warm** :class:`~repro.runtime.pool.BatchCompiler` whose worker
  processes survive across submissions, so small jobs do not pay the
  pool-spawn cost per request;
* a :class:`~repro.runtime.cache.ScheduleCache` (optionally disk-backed)
  that serves repeated submissions without recompiling;
* a :class:`~repro.service.jobs.JobStore` of every submission, keyed by
  the fingerprint-derived job id;
* a :class:`~repro.service.scheduler.ServiceScheduler` running up to
  ``slots`` submitted batches **concurrently** over the shared engine
  (priority order, FIFO within priority);
* optionally a :class:`~repro.service.journal.JobJournal` — a JSON-lines
  log under the cache directory that makes the job table durable:
  finished jobs survive restarts, and interrupted ones are resubmitted
  from their journaled manifests (or marked ``failed`` with a restart
  error when they cannot be).

Outcomes stream through :meth:`ServiceJob.add_outcome` as each
compilation lands, which is what makes incremental result delivery
possible before a batch finishes; cancellation
(:meth:`CompilationService.cancel`) is cooperative, taking effect
between compilations.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.hardware.presets import paper_device
from repro.obs.metrics import MetricsRegistry
from repro.obs.service import ServiceMetrics
from repro.registry import available_compilers, make_pipeline
from repro.runtime.cache import ScheduleCache
from repro.runtime.manifest import (
    jobs_from_manifest,
    manifest_document_from_text,
)
from repro.runtime.pool import BatchCompiler
from repro.service.jobs import (
    TERMINAL_STATUSES,
    JobStore,
    ServiceJob,
    job_batch_id,
)
from repro.service.journal import JobJournal, compact_journal, replay_journal
from repro.service.results import ResultStore
from repro.service.scheduler import ServiceScheduler

#: File name of the job journal inside the service's cache directory.
JOURNAL_FILENAME = "jobs.journal.jsonl"

#: Subdirectory of the cache directory holding the durable result store.
RESULTS_DIRNAME = "results"


class CompilationService:
    """Concurrent, durable compilation jobs over a warm batch engine.

    Parameters
    ----------
    workers:
        Worker-process count of the underlying engine.
    cache:
        An existing :class:`ScheduleCache` to serve and populate.
    cache_dir:
        Shorthand for a disk-backed cache (ignored when ``cache`` is
        given), so schedules — and, via the journal, the job table —
        survive service restarts.
    warm:
        Keep the engine's worker pool alive across submissions (the
        default; disable only for tests of the cold path).
    slots:
        How many submitted batches may run concurrently (``1`` restores
        the old strictly-serial executor behaviour).
    engine:
        An existing engine to run on instead of building one —
        ``workers``/``cache``/``warm`` are then ignored.  Tests inject
        controllable engines here.
    cache_tier:
        A shared network cache to consult behind the local tiers: either
        a base URL (``http://host:port`` — wrapped in an
        :class:`~repro.runtime.cache_tier.HttpCacheTier`) or any object
        satisfying the :class:`~repro.runtime.cache_tier.CacheTier`
        protocol.  Attached to the engine's schedule cache, so fleet
        workers pointed at one tier share every compilation.
    journal_path:
        Where to keep the JSON-lines job journal.  Defaults to
        ``<cache_dir>/jobs.journal.jsonl`` when ``cache_dir`` is given;
        without either there is nothing durable to write to and the
        journal is disabled.
    journal:
        Set ``False`` to disable journaling even with a cache directory.
    journal_max_bytes:
        Size threshold above which the journal rotates (compacts) itself
        in place while the service runs, bounding its disk footprint
        between restarts.  ``None`` (the default) keeps the old
        behaviour: the file only shrinks at the next startup compaction.
    recover:
        What to do with journaled jobs that were queued/running when the
        previous process died: ``"resubmit"`` (default) re-parses their
        journaled manifests and queues them again — with the schedule
        cache in the same directory the recompilation is typically free —
        while ``"fail"`` marks them ``failed`` with a restart error.
        Jobs whose manifest was not journalable always fall back to the
        failure marker.
    compact:
        Compact the journal right after replaying it (the default): the
        append-only event log is rewritten to only the live/terminal
        state replay needs, so it stops growing without bound across
        restarts.  ``repro serve --no-compact`` disables this.
    results_dir:
        Where the durable result store keeps each finished job's
        streamed bytes (``<job_id>.results``).  Defaults to
        ``<cache_dir>/results`` when ``cache_dir`` is given; with
        neither, results live only in memory as before.
    results:
        Set ``False`` to disable the durable result store even with a
        cache directory.
    max_result_bytes:
        LRU byte budget for finalised result files (``None`` =
        unbounded).  In-flight streams are never evicted.
    drain_timeout:
        Default bound, in seconds, on how long :meth:`close` waits for
        running batches to finish before cooperatively cancelling them.
    metrics_registry:
        An existing :class:`~repro.obs.MetricsRegistry` to expose the
        service's metrics through (embedding applications merge them
        into their own exposition); a private registry is created by
        default.  Either way :attr:`metrics` holds the
        :class:`~repro.obs.ServiceMetrics` binding behind
        ``GET /v1/metrics``.
    """

    def __init__(
        self,
        workers: int | None = 2,
        cache: ScheduleCache | None = None,
        cache_dir: "Path | str | None" = None,
        max_cache_entries: int = 256,
        warm: bool = True,
        slots: int = 2,
        engine: BatchCompiler | None = None,
        cache_tier: "str | Any | None" = None,
        journal_path: "Path | str | None" = None,
        journal: bool = True,
        journal_max_bytes: int | None = None,
        recover: str = "resubmit",
        compact: bool = True,
        results_dir: "Path | str | None" = None,
        results: bool = True,
        max_result_bytes: int | None = None,
        drain_timeout: float | None = 10.0,
        metrics_registry: MetricsRegistry | None = None,
    ) -> None:
        if recover not in ("resubmit", "fail"):
            raise ValueError(f"unknown recover policy {recover!r}")
        if engine is None:
            if cache is None:
                cache = ScheduleCache(
                    max_entries=max_cache_entries, directory=cache_dir
                )
            engine = BatchCompiler(workers=workers, cache=cache, warm=warm)
        self.engine = engine
        if cache_tier is not None:
            if isinstance(cache_tier, str):
                from repro.runtime.cache_tier import HttpCacheTier

                cache_tier = HttpCacheTier(cache_tier)
            self.engine.cache.tiers = self.engine.cache.tiers + (cache_tier,)
        self.store = JobStore()
        self.started_at = time.time()
        self.started_monotonic = time.monotonic()
        if metrics_registry is None:
            metrics_registry = MetricsRegistry()
        self.scheduler = ServiceScheduler(
            self.engine,
            slots=slots,
            observer=self._on_transition,
            registry=metrics_registry,
        )
        self.drain_timeout = drain_timeout
        if journal_path is None and journal and cache_dir is not None:
            journal_path = Path(cache_dir) / JOURNAL_FILENAME
        if results_dir is None and results and cache_dir is not None:
            results_dir = Path(cache_dir) / RESULTS_DIRNAME
        self.results: ResultStore | None = None
        if results and results_dir is not None:
            self.results = ResultStore(results_dir, max_disk_bytes=max_result_bytes)
        self.journal: JobJournal | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._compilers_cache: "tuple[tuple, list[dict[str, object]]] | None" = None
        self.metrics = ServiceMetrics(self, registry=metrics_registry)
        if journal and journal_path is not None:
            recovered = replay_journal(journal_path)
            if compact:
                compact_journal(journal_path, states=recovered)
            self.journal = JobJournal(journal_path, max_bytes=journal_max_bytes)
            self._recover(recovered, policy=recover)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler slots (idempotent; ``submit`` calls it)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the service has been closed")
        self.scheduler.start()

    def close(self, drain_timeout: float | None = None) -> None:
        """Graceful shutdown: drain running jobs, cancel the queue.

        Running batches get ``drain_timeout`` seconds (defaulting to the
        service's ``drain_timeout``) to finish; still-queued jobs are
        marked ``cancelled`` — and journaled as such, so a restart does
        not resurrect work the operator shut down on purpose.  The
        journal is flushed and closed, then the engine's workers are
        released.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if drain_timeout is None:
            drain_timeout = self.drain_timeout
        self.scheduler.close(drain_timeout=drain_timeout)
        if self.journal is not None:
            self.journal.close()
        if self.results is not None:
            self.results.close()
        if self.scheduler.active_count() == 0:
            self.engine.close()
        # else: slots outlived the drain deadline.  Terminating the warm
        # pool under their live engine.run calls would leave the daemon
        # slot threads blocked in the pool's result iterators forever —
        # leave the workers to die with the process instead (they are
        # daemonic), and let the cooperative cancel land if it can.

    def __enter__(self) -> "CompilationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # journal plumbing
    # ------------------------------------------------------------------
    def _on_transition(self, job: ServiceJob, transition: str) -> None:
        """Scheduler observer: journal every state change, seal results.

        On ``done``, the durable result store's partial stream gains the
        terminal ``end`` line (the same bytes :meth:`stream_encoded`
        ends with) and is finalised; failed and cancelled jobs abandon
        theirs — those ids are retryable, and a stale partial stream
        must not shadow the retry.
        """
        if self.results is not None and transition in TERMINAL_STATUSES:
            if transition == "done":
                self.results.finalize(job.job_id, self._encoded_end_line(job))
            else:
                self.results.abandon(job.job_id)
        if self.journal is None:
            return
        fields: dict[str, Any] = {}
        if transition == "done" and job.summary is not None:
            fields["summary"] = job.summary
        if transition == "failed" and job.error is not None:
            fields["error"] = job.error
        self.journal.append(transition, job.job_id, **fields)

    def _journal_submission(
        self, job: ServiceJob, document: Any
    ) -> None:
        if self.journal is None:
            return
        # A document that resists JSON (live objects in a Python-side
        # submission) is dropped by JobJournal.append's own fallback;
        # replay then sees manifest=None and marks the job failed
        # rather than resubmitting it.
        self.journal.append(
            "submitted",
            job.job_id,
            created_at=job.created_at,
            priority=job.priority,
            jobs=len(job.jobs),
            specs=job.spec_rows(),
            manifest=document,
        )

    def _recover(self, recovered: "list[dict[str, Any]]", policy: str) -> None:
        """Rebuild the job table from replayed journal states."""
        for state in recovered:
            status = state["status"]
            if status in ("done", "failed", "cancelled"):
                job = ServiceJob.from_journal(
                    state["job_id"],
                    status,
                    created_at=state["created_at"] or 0.0,
                    priority=state["priority"],
                    total_jobs=state["total_jobs"],
                    spec_rows=state["spec_rows"],
                    summary=state["summary"],
                    error=state["error"],
                    started_at=state["started_at"],
                    finished_at=state["finished_at"],
                )
                if status == "done" and self.results is not None:
                    # The durable store may hold the job's full original
                    # stream; attaching it makes the results replayable
                    # byte-for-byte with zero recompilation.
                    job.stored_lines = self.results.load(job.job_id)
                self.store.put(job)
                continue
            # Interrupted mid-flight.  Resubmit when we can, otherwise
            # record the restart as the failure it was.
            resubmitted = False
            if policy == "resubmit" and state["manifest"] is not None:
                try:
                    jobs = jobs_from_manifest(state["manifest"])
                    job = ServiceJob(
                        state["job_id"], jobs, priority=state["priority"]
                    )
                    job.replayed = True
                except Exception:  # noqa: BLE001 - fall through to failure marker
                    pass
                else:
                    self.store.put(job)
                    self.scheduler.submit(job)
                    resubmitted = True
            if not resubmitted:
                failed = ServiceJob.from_journal(
                    state["job_id"],
                    "failed",
                    created_at=state["created_at"] or 0.0,
                    priority=state["priority"],
                    total_jobs=state["total_jobs"],
                    spec_rows=state["spec_rows"],
                    error={
                        "type": "ServiceRestart",
                        "message": "restart: the service stopped while this "
                        "job was in flight and it could not be resubmitted",
                    },
                    started_at=state["started_at"],
                )
                self.store.put(failed)
                if self.journal is not None:
                    self.journal.append("failed", failed.job_id, error=failed.error)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_document(
        self, document: Any, priority: int = 0
    ) -> "tuple[ServiceJob, bool]":
        """Submit a parsed manifest document; returns ``(job, resubmitted)``.

        Raises :class:`~repro.exceptions.ManifestError` for invalid
        documents.  A manifest whose fingerprint-derived id matches an
        existing job that is neither ``failed`` nor ``cancelled`` is
        **not** re-run: the original job is returned with
        ``resubmitted=True`` (its results may already be streaming, or
        complete).  Failed and cancelled jobs are retried.
        """
        jobs = jobs_from_manifest(document)
        return self._enqueue(jobs, priority=priority, document=document)

    def submit_text(
        self, body: "str | bytes", priority: int = 0
    ) -> "tuple[ServiceJob, bool]":
        """Submit a raw JSON manifest body (the POST request path)."""
        document = manifest_document_from_text(body)
        return self.submit_document(document, priority=priority)

    def _enqueue(
        self, jobs: list, priority: int, document: Any
    ) -> "tuple[ServiceJob, bool]":
        self.start()
        job_id = job_batch_id(jobs)
        with self._lock:
            existing = self.store.get(job_id)
            if existing is not None and not self._retryable(existing):
                return existing, True
            job = ServiceJob(job_id, jobs, priority=priority)
            self.store.put(job)
        if self.results is not None:
            # Attach the durable writer before the scheduler can run the
            # job, so no outcome line can land unpersisted.
            job.on_encoded_line = self.results.open_writer(job_id).append
        self._journal_submission(job, document)
        self.scheduler.submit(job)
        return job, False

    @staticmethod
    def _retryable(existing: ServiceJob) -> bool:
        """Whether a resubmission should re-run instead of deduplicate.

        Failed and cancelled jobs retry.  So does a **replayed terminal
        job without stored results**: its status and summary survived
        the restart but its streamed outcome buffers did not, so
        deduplicating against it would make the results permanently
        unretrievable — while the schedule cache makes the re-run nearly
        free.  A replayed job whose full stream survived in the result
        store deduplicates like any live finished job: its results are
        servable as stored bytes, with zero recompilation.
        """
        if existing.status in ("failed", "cancelled"):
            return True
        return (
            existing.replayed
            and existing.finished
            and not existing.outcomes
            and existing.stored_lines is None
        )

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> "tuple[ServiceJob, bool]":
        """Request cancellation of a job; returns ``(job, accepted)``.

        Raises :class:`KeyError` for unknown ids.  A queued job lands in
        ``cancelled`` immediately (and is journaled); a running one is
        flagged and transitions at its next outcome boundary; a job
        already terminal is returned with ``accepted=False``.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(job_id)
        was_queued = job.status == "queued"
        accepted = job.cancel()
        if accepted and was_queued and job.status == "cancelled":
            # Running jobs are journaled by the scheduler when the
            # cooperative cancel lands; queued ones finish right here.
            self._on_transition(job, "cancelled")
        return job, accepted

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> ServiceJob | None:
        """The job record for an id, or ``None``."""
        return self.store.get(job_id)

    def jobs_payload(
        self, offset: int = 0, limit: int | None = None
    ) -> dict[str, object]:
        """A paginated job listing, oldest submission first."""
        if offset < 0:
            raise ValueError("offset cannot be negative")
        if limit is not None and limit < 0:
            raise ValueError("limit cannot be negative")
        jobs = self.store.all()
        window = jobs[offset:] if limit is None else jobs[offset : offset + limit]
        return {
            "jobs": [job.status_payload() for job in window],
            "total": len(jobs),
            "offset": offset,
            "count": len(window),
        }

    def stream_lines(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, object]]:
        """JSON-ready result lines for a job, in job order, as they land.

        Yields one ``{"type": "outcome", ...}`` object per compile job
        and exactly one terminal ``{"type": "end", ...}`` object carrying
        the batch summary (or the failure).  Unknown ids raise
        :class:`KeyError` — eagerly, before the first iteration, so HTTP
        handlers can turn it into a 404 while the status line is still
        unsent.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return self._stream_lines(job, timeout)

    def _stream_lines(
        self, job: ServiceJob, timeout: float | None
    ) -> Iterator[dict[str, object]]:
        if job.stored_lines is not None:
            for line in job.stored_lines:
                yield json.loads(line)
            return
        for index, outcome in enumerate(job.iter_outcomes(timeout=timeout)):
            yield {
                "type": "outcome",
                "job_id": job.job_id,
                "index": index,
                "fingerprint": outcome.fingerprint,
                "compile_fingerprint": outcome.compile_fingerprint,
                "record": dict(outcome.record),
                "compile_time_s": outcome.compile_time_s,
                "from_cache": outcome.from_cache,
            }
        end: dict[str, object] = {
            "type": "end",
            "job_id": job.job_id,
            "status": job.status,
        }
        if job.summary is not None:
            end["summary"] = dict(job.summary)
        if job.error is not None:
            end["error"] = dict(job.error)
        yield end

    def stream_encoded(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[bytes]:
        """The result stream as ready-to-write JSON line bytes.

        The fast-path twin of :meth:`stream_lines`: outcome lines are the
        bytes :meth:`ServiceJob.add_outcome` encoded when each outcome
        landed, passed through verbatim, so replaying a finished job's
        stream serialises nothing.  Only the terminal ``end`` line is
        encoded per call (it depends on the job's status at stream time).
        Every line is byte-identical to ``json.dumps(line, sort_keys=True)``
        of the corresponding :meth:`stream_lines` object.  Unknown ids
        raise :class:`KeyError` eagerly, as :meth:`stream_lines` does.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return self._stream_encoded(job, timeout)

    @staticmethod
    def _encoded_end_line(job: ServiceJob) -> bytes:
        """The terminal ``end`` line's bytes for a job's current state.

        One encoder shared by live streaming and result-store
        finalisation, so the stored stream is byte-identical to the one
        the original client read.
        """
        end: dict[str, object] = {
            "type": "end",
            "job_id": job.job_id,
            "status": job.status,
        }
        if job.summary is not None:
            end["summary"] = dict(job.summary)
        if job.error is not None:
            end["error"] = dict(job.error)
        return json.dumps(end, sort_keys=True).encode("utf-8")

    def _stream_encoded(
        self, job: ServiceJob, timeout: float | None
    ) -> Iterator[bytes]:
        if job.stored_lines is not None:
            # Restored from the durable result store after a restart:
            # the full original stream (end line included), verbatim.
            yield from job.stored_lines
            return
        yield from job.iter_encoded_lines(timeout=timeout)
        yield self._encoded_end_line(job)

    def cache_entry_bytes(self, compile_fingerprint: str) -> "bytes | None":
        """One cache entry as raw binary bytes (``GET /v1/cache/<fp>``).

        The server half of the network cache tier: answers the exact
        ``RCEN`` payload a peer's :class:`HttpCacheTier` will feed to
        :meth:`CachedCompilation.from_bytes`.  Uses :meth:`peek` —
        remote probes must not skew this node's hit/miss statistics.
        """
        entry = self.engine.cache.peek(compile_fingerprint)
        if entry is None:
            return None
        return entry.to_bytes()

    def cache_store_bytes(self, compile_fingerprint: str, payload: bytes) -> bool:
        """Accept a binary cache entry pushed by a peer (``PUT /v1/cache``).

        The body must parse as a current-format entry — a corrupt or
        foreign payload is refused (``False``) rather than stored, so one
        bad peer cannot poison the shared tier.  Stored with
        ``propagate=False``: an inbound PUT must not echo back out to
        this node's own tiers.
        """
        from repro.runtime.cache import CachedCompilation

        try:
            entry = CachedCompilation.from_bytes(payload)
        except Exception:  # noqa: BLE001 - any parse failure is a refusal
            return False
        self.engine.cache.put(compile_fingerprint, entry, propagate=False)
        return True

    def schedule_payload(self, compile_fingerprint: str) -> dict[str, object] | None:
        """The cached compilation stored under a compile fingerprint.

        Uses :meth:`ScheduleCache.peek`, so lookups neither skew the
        cache statistics nor reorder the LRU tier.  ``None`` when the
        fingerprint is unknown (or its on-disk entry has a mismatched
        format version).
        """
        entry = self.engine.cache.peek(compile_fingerprint)
        if entry is None:
            return None
        return {"compile_fingerprint": compile_fingerprint, "entry": entry.to_dict()}

    def compilers_payload(self) -> list[dict[str, object]]:
        """The registry listing, mirroring ``python -m repro compilers``.

        Building the payload materialises one pipeline per compiler, so
        the rows are cached and recomputed only when the registry
        contents change (spec equality includes factory identity, so a
        re-registration under the same name invalidates too).
        """
        specs = available_compilers()
        cached = self._compilers_cache
        if cached is not None and cached[0] == specs:
            return cached[1]
        device = paper_device("G-2x2")  # a representative device to materialise pipelines
        rows = []
        for spec in specs:
            pipeline = make_pipeline(spec.name, device)
            rows.append(
                {
                    "name": spec.name,
                    "aliases": list(spec.aliases),
                    "passes": list(pipeline.pass_names()),
                    "mapping": spec.default_mapping or "built-in",
                    "accepts_mapping": spec.accepts_mapping,
                    "accepts_config": spec.accepts_config,
                    "builtin": spec.builtin,
                    "description": spec.description,
                }
            )
        self._compilers_cache = (specs, rows)
        return rows

    def metrics_text(self) -> str:
        """The Prometheus exposition behind ``GET /v1/metrics``."""
        return self.metrics.render()

    def health_payload(self) -> dict[str, object]:
        """Liveness plus the numbers an operator wants at a glance.

        ``jobs`` is the per-state job census, ``scheduler`` the queue
        depth and slot occupancy, ``cache`` the shared schedule cache's
        hit/miss/eviction counters.  ``uptime_seconds`` and the journal
        size ride along so a liveness probe can alert on a restarted or
        journal-bloated service without scraping the full metrics
        endpoint.
        """
        # Imported lazily: repro/__init__ re-exports this package, so a
        # top-level import of the package root would be circular.
        from repro import __version__

        journal: "dict[str, object] | None" = None
        if self.journal is not None:
            journal = {
                "path": str(self.journal.path),
                "size_bytes": self.journal.size_bytes(),
                "events_appended": self.journal.events_appended,
                "rotations": self.journal.rotations,
            }
        results: "dict[str, object] | None" = None
        if self.results is not None:
            results = {
                "path": str(self.results.directory),
                "entries": self.results.entries(),
                "disk_bytes": self.results.disk_bytes(),
                "stores": self.results.stores,
                "replays": self.results.replays,
                "evictions": self.results.evictions,
            }
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self.started_monotonic,
            "jobs": self.store.counts(),
            "scheduler": self.scheduler.stats(),
            "engine": {"workers": self.engine.workers, "warm": self.engine.warm},
            "cache": self.engine.cache.stats.as_dict(),
            "journal": journal,
            "results": results,
        }
