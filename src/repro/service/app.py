"""The compilation service core, independent of any transport.

:class:`CompilationService` owns the three long-lived pieces the HTTP
front-end (and any embedding application) shares:

* a **warm** :class:`~repro.runtime.pool.BatchCompiler` whose worker
  processes survive across submissions, so small jobs do not pay the
  pool-spawn cost per request;
* a :class:`~repro.runtime.cache.ScheduleCache` (optionally disk-backed)
  that serves repeated submissions without recompiling;
* a :class:`~repro.service.jobs.JobStore` of every submission, keyed by
  the fingerprint-derived job id.

Submissions run on a single executor thread in FIFO order — the engine
itself fans distinct compilations out over processes, so one batch at a
time keeps the records deterministic while still saturating the workers.
Outcomes stream through :meth:`ServiceJob.add_outcome` as each
compilation lands, which is what makes incremental result delivery
possible before a batch finishes.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Any, Iterator

from repro.hardware.presets import paper_device
from repro.registry import available_compilers, make_pipeline
from repro.runtime.cache import ScheduleCache
from repro.runtime.manifest import jobs_from_manifest, jobs_from_manifest_text
from repro.runtime.pool import BatchCompiler
from repro.service.jobs import JobStore, ServiceJob, job_batch_id

#: Executor-queue sentinel that asks the worker thread to exit.
_STOP = object()


class CompilationService:
    """Async compilation jobs over a warm batch engine.

    Parameters
    ----------
    workers:
        Worker-process count of the underlying engine.
    cache:
        An existing :class:`ScheduleCache` to serve and populate.
    cache_dir:
        Shorthand for a disk-backed cache (ignored when ``cache`` is
        given), so schedules survive service restarts.
    warm:
        Keep the engine's worker pool alive across submissions (the
        default; disable only for tests of the cold path).
    """

    def __init__(
        self,
        workers: int | None = 2,
        cache: ScheduleCache | None = None,
        cache_dir: "Path | str | None" = None,
        max_cache_entries: int = 256,
        warm: bool = True,
    ) -> None:
        if cache is None:
            cache = ScheduleCache(max_entries=max_cache_entries, directory=cache_dir)
        self.engine = BatchCompiler(workers=workers, cache=cache, warm=warm)
        self.store = JobStore()
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._executor: threading.Thread | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._compilers_cache: "tuple[tuple, list[dict[str, object]]] | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the executor thread (idempotent; ``submit`` calls it)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("the service has been closed")
            if self._executor is None:
                self._executor = threading.Thread(
                    target=self._run_executor, name="repro-service-executor", daemon=True
                )
                self._executor.start()

    def close(self) -> None:
        """Stop the executor after the current batch and release workers.

        Jobs still queued behind the in-flight batch are abandoned (the
        executor checks the closed flag before starting each one), so
        shutdown takes at most one batch, not the whole backlog.
        """
        with self._lock:
            self._closed = True
            executor = self._executor
            self._executor = None
        if executor is not None:
            self._queue.put(_STOP)
            executor.join()
        self.engine.close()

    def __enter__(self) -> "CompilationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run_executor(self) -> None:
        while True:
            item = self._queue.get()
            # The closed flag outranks the backlog: _STOP only wakes an
            # idle executor, while a closing service must not start the
            # batches still queued behind the in-flight one.
            if item is _STOP or self._closed:
                return
            job: ServiceJob = item
            job.mark_running()
            try:
                result = self.engine.run(job.jobs, on_outcome=job.add_outcome)
            except Exception as exc:  # noqa: BLE001 - job-scoped failure, not ours
                job.mark_failed(exc)
            else:
                job.mark_done(result)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_document(self, document: Any) -> "tuple[ServiceJob, bool]":
        """Submit a parsed manifest document; returns ``(job, resubmitted)``.

        Raises :class:`~repro.exceptions.ManifestError` for invalid
        documents.  A manifest whose fingerprint-derived id matches an
        existing non-failed job is **not** re-run: the original job is
        returned with ``resubmitted=True`` (its results may already be
        streaming, or complete).  A failed job is retried.
        """
        jobs = jobs_from_manifest(document)
        return self._enqueue(jobs)

    def submit_text(self, body: "str | bytes") -> "tuple[ServiceJob, bool]":
        """Submit a raw JSON manifest body (the POST request path)."""
        jobs = jobs_from_manifest_text(body)
        return self._enqueue(jobs)

    def _enqueue(self, jobs: list) -> "tuple[ServiceJob, bool]":
        self.start()
        job_id = job_batch_id(jobs)
        with self._lock:
            existing = self.store.get(job_id)
            if existing is not None and existing.status != "failed":
                return existing, True
            job = ServiceJob(job_id, jobs)
            self.store.put(job)
        self._queue.put(job)
        return job, False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> ServiceJob | None:
        """The job record for an id, or ``None``."""
        return self.store.get(job_id)

    def stream_lines(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict[str, object]]:
        """JSON-ready result lines for a job, in job order, as they land.

        Yields one ``{"type": "outcome", ...}`` object per compile job
        and exactly one terminal ``{"type": "end", ...}`` object carrying
        the batch summary (or the failure).  Unknown ids raise
        :class:`KeyError` — eagerly, before the first iteration, so HTTP
        handlers can turn it into a 404 while the status line is still
        unsent.
        """
        job = self.store.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return self._stream_lines(job, timeout)

    def _stream_lines(
        self, job: ServiceJob, timeout: float | None
    ) -> Iterator[dict[str, object]]:
        for index, outcome in enumerate(job.iter_outcomes(timeout=timeout)):
            yield {
                "type": "outcome",
                "job_id": job.job_id,
                "index": index,
                "fingerprint": outcome.fingerprint,
                "compile_fingerprint": outcome.compile_fingerprint,
                "record": dict(outcome.record),
                "compile_time_s": outcome.compile_time_s,
                "from_cache": outcome.from_cache,
            }
        end: dict[str, object] = {
            "type": "end",
            "job_id": job.job_id,
            "status": job.status,
        }
        if job.summary is not None:
            end["summary"] = dict(job.summary)
        if job.error is not None:
            end["error"] = dict(job.error)
        yield end

    def schedule_payload(self, compile_fingerprint: str) -> dict[str, object] | None:
        """The cached compilation stored under a compile fingerprint.

        Uses :meth:`ScheduleCache.peek`, so lookups neither skew the
        cache statistics nor reorder the LRU tier.  ``None`` when the
        fingerprint is unknown (or its on-disk entry has a mismatched
        format version).
        """
        entry = self.engine.cache.peek(compile_fingerprint)
        if entry is None:
            return None
        return {"compile_fingerprint": compile_fingerprint, "entry": entry.to_dict()}

    def compilers_payload(self) -> list[dict[str, object]]:
        """The registry listing, mirroring ``python -m repro compilers``.

        Building the payload materialises one pipeline per compiler, so
        the rows are cached and recomputed only when the registry
        contents change (spec equality includes factory identity, so a
        re-registration under the same name invalidates too).
        """
        specs = available_compilers()
        cached = self._compilers_cache
        if cached is not None and cached[0] == specs:
            return cached[1]
        device = paper_device("G-2x2")  # a representative device to materialise pipelines
        rows = []
        for spec in specs:
            pipeline = make_pipeline(spec.name, device)
            rows.append(
                {
                    "name": spec.name,
                    "aliases": list(spec.aliases),
                    "passes": list(pipeline.pass_names()),
                    "mapping": spec.default_mapping or "built-in",
                    "accepts_mapping": spec.accepts_mapping,
                    "accepts_config": spec.accepts_config,
                    "builtin": spec.builtin,
                    "description": spec.description,
                }
            )
        self._compilers_cache = (specs, rows)
        return rows

    def health_payload(self) -> dict[str, object]:
        """Liveness plus the numbers an operator wants at a glance."""
        # Imported lazily: repro/__init__ re-exports this package, so a
        # top-level import of the package root would be circular.
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "jobs": self.store.counts(),
            "engine": {"workers": self.engine.workers, "warm": self.engine.warm},
            "cache": self.engine.cache.stats.as_dict(),
        }
