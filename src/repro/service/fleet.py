"""A fleet front door: one router process, N shared-nothing workers.

``repro serve --fleet N`` (or :func:`make_fleet`) runs the compilation
service as a small process fleet instead of one process:

* the **router** owns the public HTTP surface.  It parses each submitted
  manifest just far enough to compute its deterministic job id
  (:func:`~repro.service.jobs.job_batch_id` — pure fingerprint hashing,
  no compilation) and forwards the request to the worker that owns the
  id's shard: ``int(job_id, 16) % N``.  Routing is consistent, so a
  byte-identical resubmission lands on the worker that already holds the
  job — idempotency keeps working fleet-wide without shared state.
* each **worker** is a full single-process service
  (:class:`~repro.service.app.CompilationService` behind its own
  ephemeral-port HTTP server) in its own OS process, with its own engine
  pool, journal, result store and cache directory under
  ``<cache_dir>/worker-<i>``.  Workers share nothing with each other.
* the workers' schedule caches are **tiered onto the router**: the
  router serves ``GET/PUT /v1/cache/<fingerprint>`` from a shared
  :class:`~repro.runtime.cache.ScheduleCache` (under
  ``<cache_dir>/shared``), so a circuit compiled by worker 2 is a
  network-tier hit for worker 5 — cross-worker cache sharing with zero
  recompilation, speaking the same binary entry format as local disk.

Failure handling is bounded and explicit.  A health thread watches every
worker process and respawns dead ones (same shard, same directories — a
respawned worker replays its journal and resubmits whatever was running
when it died).  While a shard is down, submissions walk to the next
alive worker; result fetches for jobs the fleet has already acknowledged
fail over the same way, re-submitting the memoized manifest body and
resuming the stream at the first line the client has not yet seen.
Compilation is deterministic and the schedule cache is shared, so a
failover replay streams the same bytes the dead worker would have sent.

Aggregated read endpoints: ``GET /v1/jobs`` merges every worker's job
table (newest-last, one consistent pagination), ``GET /v1/healthz``
reports per-worker liveness plus fleet totals, ``GET /v1/metrics`` sums
every worker's Prometheus exposition sample-by-sample and appends the
router's own ``repro_fleet_*`` families, and ``GET /v1/fleet`` describes
the topology.  Everything is standard library, like the rest of the
service stack.
"""

from __future__ import annotations

import http.client
import json
import logging
import multiprocessing
import signal
import threading
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Iterator

from repro.exceptions import ManifestError, ReproError, ServiceError
from repro.obs.metrics import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    Counter,
    Gauge,
    MetricsRegistry,
    ParsedMetric,
    Sample,
    format_value,
    parse_exposition,
)
from repro.runtime.cache import CachedCompilation, ScheduleCache
from repro.runtime.manifest import jobs_from_manifest, manifest_document_from_text
from repro.service.client import ServiceClient
from repro.service.jobs import job_batch_id
from repro.service.server import (
    MAX_BODY_BYTES,
    ServiceRequestHandler,
    _route_template,
)

logger = logging.getLogger("repro.service.fleet")

#: Subdirectory of the fleet cache directory holding the shared tier.
SHARED_CACHE_DIRNAME = "shared"

#: Manifest bodies memoized for failover, newest-kept (per router).
MAX_ROUTED_MEMO = 4096

#: Seconds a spawned worker gets to report its listening port.
WORKER_READY_TIMEOUT = 120.0


def _fleet_worker_main(
    index: int,
    host: str,
    cache_tier_url: str,
    conn: Any,
    service_kwargs: dict,
) -> None:
    """Entry point of one worker process (spawned, so module-level).

    Builds a complete single-process service on an ephemeral port,
    reports the port back through ``conn``, then serves until the router
    terminates it.  SIGTERM triggers the same graceful drain an operator
    Ctrl-C would.
    """
    import signal

    from repro.service.server import make_server

    def _terminate(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server = make_server(
            host=host, port=0, cache_tier=cache_tier_url, **service_kwargs
        )
    except Exception as exc:  # noqa: BLE001 - reported to the router
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", server.server_address[1]))
    conn.close()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        try:
            server.server_close()
            server.service.close()
        except Exception:  # noqa: BLE001 - dying anyway
            logger.debug("worker %d shutdown error", index, exc_info=True)


class FleetWorker:
    """The router's record of one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: "multiprocessing.process.BaseProcess | None" = None
        self.port: "int | None" = None
        self.client: "ServiceClient | None" = None
        self.restarts = 0
        self.jobs_routed = 0

    @property
    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.is_alive()
            and self.client is not None
        )

    @property
    def url(self) -> "str | None":
        return self.client.base_url if self.client is not None else None

    def describe(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "url": self.url,
            "alive": self.alive,
            "pid": self.process.pid if self.process is not None else None,
            "restarts": self.restarts,
            "jobs_routed": self.jobs_routed,
        }


class FleetRouter:
    """Owns the worker fleet, the shared cache tier and the routing state."""

    def __init__(
        self,
        size: int,
        cache_dir: "Path | str | None" = None,
        worker_host: str = "127.0.0.1",
        health_interval: float = 0.5,
        ready_timeout: float = WORKER_READY_TIMEOUT,
        max_cache_entries: int = 256,
        **service_kwargs: Any,
    ) -> None:
        if size < 1:
            raise ReproError("a fleet needs at least one worker")
        self.size = size
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.worker_host = worker_host
        self.health_interval = health_interval
        self.ready_timeout = ready_timeout
        self.service_kwargs = dict(service_kwargs)
        shared_dir = (
            self.cache_dir / SHARED_CACHE_DIRNAME
            if self.cache_dir is not None
            else None
        )
        #: The shared schedule cache behind GET/PUT /v1/cache on the router.
        self.cache = ScheduleCache(
            max_entries=max_cache_entries, directory=shared_dir
        )
        self.workers = [FleetWorker(index) for index in range(size)]
        self.started_at = time.monotonic()
        self._mp = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._overrides: dict[str, int] = {}  # job_id -> off-shard worker
        self._bodies: "dict[str, tuple[bytes, int]]" = {}  # job_id -> manifest
        self._closing = threading.Event()
        self._health_thread: "threading.Thread | None" = None
        self.registry = MetricsRegistry()
        self.http_requests = self.registry.counter(
            "repro_fleet_http_requests_total",
            "HTTP requests served by the fleet router, by route and status.",
            ("method", "route", "status"),
        )
        self.routed = self.registry.counter(
            "repro_fleet_jobs_routed_total",
            "Job submissions forwarded to each worker shard.",
            ("worker",),
        )
        self.failovers = self.registry.counter(
            "repro_fleet_failovers_total",
            "Submissions or result fetches re-routed off a dead shard.",
        )
        self.respawns = self.registry.counter(
            "repro_fleet_respawns_total",
            "Worker processes restarted by the router's health loop.",
        )
        self.registry.register_collector(self._collect)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every worker and start the health loop (idempotent)."""
        if self._health_thread is not None:
            return
        for worker in self.workers:
            self._spawn(worker)
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-fleet-health", daemon=True
        )
        self._health_thread.start()

    def close(self, join_timeout: float = 15.0) -> None:
        """Stop the health loop and terminate every worker."""
        self._closing.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=join_timeout)
            self._health_thread = None
        for worker in self.workers:
            if worker.client is not None:
                worker.client.close()
            process = worker.process
            if process is not None and process.is_alive():
                process.terminate()
        for worker in self.workers:
            process = worker.process
            if process is not None:
                process.join(timeout=join_timeout)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.kill()
                    process.join(timeout=join_timeout)

    def _worker_cache_dir(self, index: int) -> "Path | None":
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"worker-{index}"

    def _spawn(self, worker: FleetWorker) -> bool:
        """Start (or restart) one worker process; ``True`` when it's up."""
        kwargs = dict(self.service_kwargs)
        cache_dir = self._worker_cache_dir(worker.index)
        if cache_dir is not None:
            kwargs["cache_dir"] = cache_dir
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_fleet_worker_main,
            args=(
                worker.index,
                self.worker_host,
                self.url,
                child_conn,
                kwargs,
            ),
            name=f"repro-fleet-worker-{worker.index}",
            # Not a daemon: warm workers run their own engine process
            # pool, and daemonic processes may not have children.
            # close() terminates them explicitly instead.
            daemon=False,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.port = None
        if worker.client is not None:
            worker.client.close()
            worker.client = None
        try:
            if not parent_conn.poll(self.ready_timeout):
                raise ReproError(
                    f"fleet worker {worker.index} did not report ready "
                    f"within {self.ready_timeout}s"
                )
            kind, value = parent_conn.recv()
        except (EOFError, OSError) as exc:
            logger.error("fleet worker %d died during startup: %s", worker.index, exc)
            return False
        finally:
            parent_conn.close()
        if kind != "ready":
            logger.error("fleet worker %d failed to start: %s", worker.index, value)
            return False
        worker.port = int(value)
        worker.client = ServiceClient(
            f"http://{self.worker_host}:{worker.port}", timeout=300.0
        )
        return True

    def _health_loop(self) -> None:
        while not self._closing.wait(self.health_interval):
            for worker in self.workers:
                process = worker.process
                if process is None or process.is_alive():
                    continue
                if self._closing.is_set():
                    return
                logger.warning(
                    "fleet worker %d (pid %s) died; respawning",
                    worker.index,
                    process.pid,
                )
                worker.restarts += 1
                self.respawns.inc()
                self._spawn(worker)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Set by :class:`FleetServer` once the router socket is bound."""
        return self._url

    @url.setter
    def url(self, value: str) -> None:
        self._url = value

    def shard_of(self, job_id: str) -> int:
        return int(job_id, 16) % self.size

    def _alive_from(self, start: int, exclude: "int | None" = None) -> Iterator[FleetWorker]:
        for offset in range(self.size):
            worker = self.workers[(start + offset) % self.size]
            if worker.index == exclude:
                continue
            if worker.alive:
                yield worker

    def assigned_worker(self, job_id: str) -> "FleetWorker | None":
        """The worker currently responsible for ``job_id`` (if alive)."""
        with self._lock:
            index = self._overrides.get(job_id, self.shard_of(job_id))
        worker = self.workers[index]
        return worker if worker.alive else None

    def _remember(
        self, job_id: str, worker: FleetWorker, body: bytes, priority: int
    ) -> None:
        with self._lock:
            if worker.index != self.shard_of(job_id):
                self._overrides[job_id] = worker.index
            else:
                self._overrides.pop(job_id, None)
            self._bodies[job_id] = (body, priority)
            while len(self._bodies) > MAX_ROUTED_MEMO:
                dropped = next(iter(self._bodies))
                del self._bodies[dropped]
                self._overrides.pop(dropped, None)

    def submit(self, body: bytes, priority: int = 0) -> dict[str, Any]:
        """Route one manifest submission to its shard (with failover).

        Raises :class:`~repro.exceptions.ManifestError` for bodies the
        fleet cannot even derive a job id from, and the worker's own
        :class:`ServiceError` when the shard rejects the submission.
        """
        document = manifest_document_from_text(body)
        job_id = job_batch_id(jobs_from_manifest(document))
        shard = self.shard_of(job_id)
        last_error: "ServiceError | None" = None
        for worker in self._alive_from(shard):
            try:
                receipt = worker.client.submit(body, priority=priority)
            except ServiceError as exc:
                if exc.status:
                    raise  # the worker answered; that answer stands
                last_error = exc  # transport failure: walk to the next shard
                self.failovers.inc()
                continue
            if worker.index != shard:
                self.failovers.inc()
            worker.jobs_routed += 1
            self.routed.labels(worker=str(worker.index)).inc()
            self._remember(job_id, worker, body, priority)
            return receipt
        raise last_error or ServiceError("no alive fleet workers", status=503)

    def _resubmit_elsewhere(
        self, job_id: str, exclude: "int | None" = None
    ) -> bool:
        """Failover: replay the memoized manifest on another shard."""
        with self._lock:
            memo = self._bodies.get(job_id)
        if memo is None:
            return False
        body, priority = memo
        for worker in self._alive_from(self.shard_of(job_id), exclude=exclude):
            try:
                worker.client.submit(body, priority=priority)
            except ServiceError as exc:
                if exc.status:
                    raise
                continue
            worker.jobs_routed += 1
            self.routed.labels(worker=str(worker.index)).inc()
            self.failovers.inc()
            self._remember(job_id, worker, body, priority)
            return True
        return False

    def stream_results(
        self, job_id: str, timeout: "float | None" = None
    ) -> Iterator[bytes]:
        """Yield raw result lines for ``job_id``, failing over on death.

        The stream resumes on the failover shard at the first line the
        caller has not yet received: compilation is deterministic and the
        schedule cache is shared, so the replayed stream is byte-identical
        to the one the dead worker was sending.  Raises :class:`KeyError`
        when no worker knows the job and no manifest memo exists.
        """
        path = f"/v1/jobs/{job_id}/results"
        if timeout is not None:
            path += f"?timeout={timeout}"
        skip = 0
        for _attempt in range(2 * self.size + 2):
            worker = self.assigned_worker(job_id)
            if worker is None:
                # Shard down and no override yet: replay onto another
                # shard before giving up.
                if not self._resubmit_elsewhere(job_id):
                    raise KeyError(job_id)
                continue
            try:
                response = worker.client._open("GET", path)
            except ServiceError as exc:
                if exc.status == 404:
                    # A respawned (or failover) worker that never saw the
                    # job: replay the memoized manifest onto it.
                    if not self._resubmit_elsewhere(job_id):
                        raise KeyError(job_id) from exc
                    continue
                if exc.status:
                    raise
                if not self._resubmit_elsewhere(job_id, exclude=worker.index):
                    raise
                continue
            index = 0
            try:
                with response:
                    for raw in response:
                        line = raw.rstrip(b"\n")
                        if not line:
                            continue
                        if index >= skip:
                            yield line
                        index += 1
            except (OSError, http.client.HTTPException) as exc:
                # The worker died mid-stream.  Resume where the client
                # stopped hearing from us, on whichever shard takes over.
                skip = index
                self.failovers.inc()
                logger.warning(
                    "results stream for %s broke on worker %d (%s); failing over",
                    job_id,
                    worker.index,
                    exc,
                )
                if not self._resubmit_elsewhere(job_id, exclude=worker.index):
                    raise
                continue
            return
        raise ServiceError(f"results for {job_id} kept failing over", status=503)

    def proxy_job(self, job_id: str) -> dict[str, Any]:
        """Status lookup, walking shards when the assignment is stale."""
        return self._proxy(job_id, lambda client: client.job(job_id))

    def proxy_cancel(self, job_id: str) -> dict[str, Any]:
        return self._proxy(job_id, lambda client: client.cancel(job_id))

    def _proxy(self, job_id: str, call: Any) -> dict[str, Any]:
        worker = self.assigned_worker(job_id)
        tried: set[int] = set()
        last: "ServiceError | None" = None
        candidates = ([worker] if worker is not None else []) + list(
            self._alive_from(self.shard_of(job_id))
        )
        for candidate in candidates:
            if candidate.index in tried:
                continue
            tried.add(candidate.index)
            try:
                return call(candidate.client)
            except ServiceError as exc:
                last = exc
                if exc.status == 404:
                    continue  # maybe another shard owns it (router restarted)
                raise
        if last is not None:
            raise last
        raise ServiceError("no alive fleet workers", status=503)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def jobs_payload(
        self, offset: int = 0, limit: "int | None" = None
    ) -> dict[str, Any]:
        """Every worker's job table merged into one consistent listing."""
        merged: list[dict[str, Any]] = []
        for worker in self._alive_from(0):
            try:
                merged.extend(worker.client.jobs_page()["jobs"])
            except ServiceError:
                continue
        merged.sort(key=lambda job: (job.get("created_at") or 0, job["job_id"]))
        window = merged[offset:]
        if limit is not None:
            window = window[:limit]
        return {
            "jobs": window,
            "total": len(merged),
            "offset": offset,
            "count": len(window),
        }

    def health_payload(self) -> dict[str, Any]:
        from repro import __version__

        workers = [worker.describe() for worker in self.workers]
        alive = sum(1 for entry in workers if entry["alive"])
        return {
            "status": "ok" if alive == self.size else "degraded",
            "version": __version__,
            "uptime_seconds": time.monotonic() - self.started_at,
            "fleet": {
                "size": self.size,
                "alive": alive,
                "workers": workers,
            },
            "cache": self.cache.stats.as_dict(),
        }

    def fleet_payload(self) -> dict[str, Any]:
        with self._lock:
            overrides = dict(self._overrides)
            memoized = len(self._bodies)
        return {
            "size": self.size,
            "workers": [worker.describe() for worker in self.workers],
            "shared_cache": self.cache.stats.as_dict(),
            "overrides": overrides,
            "memoized_jobs": memoized,
        }

    def metrics_text(self) -> str:
        """Fleet-wide exposition: worker samples summed, router appended.

        Same-name samples with identical label sets are added across
        workers, so counters become fleet totals and gauges fleet sums
        (``repro_scheduler_slots`` is the fleet's total slot count, and
        ``repro_service_info`` sums to the number of alive workers on
        that version — a liveness signal in its own right).
        """
        merged: "dict[str, ParsedMetric]" = {}
        order: "dict[str, dict[tuple, Sample]]" = {}
        for worker in self.workers:
            if not worker.alive:
                continue
            try:
                text = worker.client.metrics()
            except ServiceError:
                continue
            for name, family in parse_exposition(text).items():
                target = merged.get(name)
                if target is None:
                    target = ParsedMetric(name, family.kind, family.help)
                    merged[name] = target
                    order[name] = {}
                index = order[name]
                for sample in family.samples:
                    key = (sample.name, sample.labels)
                    seen = index.get(key)
                    if seen is None:
                        index[key] = sample
                    else:
                        index[key] = Sample(
                            sample.name, sample.labels, seen.value + sample.value
                        )
        lines: list[str] = []
        for name, family in merged.items():
            lines.append(f"# HELP {name} {_escape(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for sample in order[name].values():
                lines.append(_render_sample(sample))
        worker_text = "\n".join(lines) + "\n" if lines else ""
        return worker_text + self.registry.render()

    def _collect(self) -> list:
        workers = Gauge(
            "repro_fleet_workers",
            "Fleet worker processes, by liveness.",
            ("state",),
        )
        alive = sum(1 for worker in self.workers if worker.alive)
        workers.labels(state="alive").set(alive)
        workers.labels(state="configured").set(self.size)
        restarts = Counter(
            "repro_fleet_worker_restarts_total",
            "Total worker restarts across the fleet's lifetime.",
        )
        restarts.inc(sum(worker.restarts for worker in self.workers))
        return [workers, restarts]

    # ------------------------------------------------------------------
    # shared cache tier (server side)
    # ------------------------------------------------------------------
    def cache_entry_bytes(self, fingerprint: str) -> "bytes | None":
        entry = self.cache.peek(fingerprint)
        if entry is None:
            return None
        return entry.to_bytes()

    def cache_store_bytes(self, fingerprint: str, payload: bytes) -> bool:
        try:
            entry = CachedCompilation.from_bytes(payload)
        except Exception:  # noqa: BLE001 - any refusal is "not an entry"
            return False
        self.cache.put(fingerprint, entry, propagate=False)
        return True


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        rendered = ",".join(
            '{}="{}"'.format(
                label,
                value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"),
            )
            for label, value in sample.labels
        )
        return f"{sample.name}{{{rendered}}} {format_value(sample.value)}"
    return f"{sample.name} {format_value(sample.value)}"


class FleetRequestHandler(ServiceRequestHandler):
    """The router's HTTP surface: same wire protocol, fleet semantics.

    Inherits the keep-alive discipline, JSON encoding and error envelope
    from :class:`ServiceRequestHandler`; every route is reimplemented in
    terms of the :class:`FleetRouter` instead of a local service.
    """

    server_version = "repro-fleet"

    @property
    def router(self) -> FleetRouter:
        return self.server.router  # type: ignore[attr-defined]

    def _record_request(self, method: str, path: str, seconds: float) -> None:
        try:
            route = _route_template(path)
            if route == "other" and path == "/v1/fleet":
                route = "/v1/fleet"
            self.router.http_requests.labels(
                method=method, route=route, status=str(self._metrics_status)
            ).inc()
        except Exception:  # noqa: BLE001 - metrics must never break serving
            logger.debug("failed to record router metrics", exc_info=True)

    def _route(self, method: str, path: str, query: dict[str, list[str]]) -> None:
        from repro.service.server import _CACHE_ENTRY, _JOB_RESULTS, _JOB_STATUS

        if path == "/v1/jobs":
            if method == "POST":
                return self._handle_submit(query)
            if method == "GET":
                return self._handle_list(query)
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _JOB_STATUS.match(path)
        if match:
            if method == "GET":
                return self._proxy_call(
                    lambda: self.router.proxy_job(match.group("job_id"))
                )
            if method == "DELETE":
                return self._proxy_call(
                    lambda: self.router.proxy_cancel(match.group("job_id"))
                )
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _CACHE_ENTRY.match(path)
        if match:
            if method == "GET":
                return self._handle_cache_get(match.group("fingerprint"))
            if method == "PUT":
                return self._handle_cache_put(match.group("fingerprint"))
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        if method != "GET":
            return self._send_error_json(405, "method_not_allowed", f"{method} {path}")
        match = _JOB_RESULTS.match(path)
        if match:
            return self._handle_results(match.group("job_id"), query)
        if path == "/v1/compilers":
            return self._proxy_call(
                lambda: {"compilers": self._any_worker().compilers()}
            )
        if path.startswith("/v1/schedules/"):
            fingerprint = path.rsplit("/", 1)[1]
            return self._proxy_call(lambda: self._any_worker().schedule(fingerprint))
        if path == "/v1/healthz":
            return self._send_json(200, self.router.health_payload())
        if path == "/v1/fleet":
            return self._send_json(200, self.router.fleet_payload())
        if path == "/v1/metrics":
            return self._handle_metrics()
        return self._send_error_json(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _any_worker(self) -> ServiceClient:
        for worker in self.router._alive_from(0):
            return worker.client
        raise ServiceError("no alive fleet workers", status=503)

    def _proxy_call(self, call: Any) -> None:
        try:
            payload = call()
        except ServiceError as exc:
            return self._send_worker_error(exc)
        self._send_json(200, payload)

    def _send_worker_error(self, exc: ServiceError) -> None:
        status = exc.status or 502
        if isinstance(exc.payload, dict) and "error" in exc.payload:
            return self._send_json(status, exc.payload)
        self._send_error_json(status, "upstream_error", str(exc))

    def _handle_submit(self, query: dict[str, list[str]]) -> None:
        def reject(status: int, error_type: str, message: str) -> None:
            self.close_connection = True
            self._send_error_json(status, error_type, message)

        try:
            priority = self._int_query(query, "priority", 0)
        except ValueError:
            return reject(400, "bad_query", "priority must be an integer")
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            return reject(
                411, "length_required", "POST /v1/jobs needs a Content-Length header"
            )
        try:
            length = int(length_header)
        except ValueError:
            return reject(
                400, "bad_request", f"invalid Content-Length {length_header!r}"
            )
        if length < 0:
            return reject(400, "bad_request", "Content-Length cannot be negative")
        if length > MAX_BODY_BYTES:
            return reject(
                413,
                "payload_too_large",
                f"manifest bodies are capped at {MAX_BODY_BYTES} bytes",
            )
        body = self.rfile.read(length)
        self.close_connection = False
        try:
            receipt = self.router.submit(body, priority=priority or 0)
        except ManifestError as exc:
            return self._send_error_json(400, "manifest_error", str(exc))
        except ServiceError as exc:
            return self._send_worker_error(exc)
        self._send_json(200 if receipt.get("resubmitted") else 202, receipt)

    def _handle_list(self, query: dict[str, list[str]]) -> None:
        try:
            offset = self._int_query(query, "offset", 0)
            limit = self._int_query(query, "limit", None)
        except ValueError:
            return self._send_error_json(
                400, "bad_query", "offset/limit must be non-negative integers"
            )
        self._send_json(200, self.router.jobs_payload(offset=offset, limit=limit))

    def _handle_metrics(self) -> None:
        body = self.router.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle_cache_get(self, fingerprint: str) -> None:
        payload = self.router.cache_entry_bytes(fingerprint)
        if payload is None:
            return self._send_error_json(
                404, "unknown_fingerprint", f"no cache entry for {fingerprint!r}"
            )
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _handle_cache_put(self, fingerprint: str) -> None:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True
            return self._send_error_json(
                411, "length_required", "PUT /v1/cache needs a Content-Length header"
            )
        try:
            length = int(length_header)
        except ValueError:
            self.close_connection = True
            return self._send_error_json(
                400, "bad_request", f"invalid Content-Length {length_header!r}"
            )
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            return self._send_error_json(
                413,
                "payload_too_large",
                f"cache entries are capped at {MAX_BODY_BYTES} bytes",
            )
        body = self.rfile.read(length)
        self.close_connection = False
        if not self.router.cache_store_bytes(fingerprint, body):
            return self._send_error_json(
                400, "bad_entry", "body is not a current-format binary cache entry"
            )
        self.send_response(204)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _handle_results(self, job_id: str, query: dict[str, list[str]]) -> None:
        timeout: "float | None" = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"][0])
            except ValueError:
                return self._send_error_json(
                    400, "bad_query", "timeout must be a number of seconds"
                )
        lines = self.router.stream_results(job_id, timeout=timeout)
        try:
            first = next(lines)
        except KeyError:
            return self._send_error_json(404, "unknown_job", f"no job {job_id!r}")
        except StopIteration:
            first = None
        except ServiceError as exc:
            return self._send_worker_error(exc)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()

        def write(line: bytes) -> None:
            data = line + b"\n"
            self.wfile.write(b"%X\r\n%s\r\n" % (len(data), data))
            self.wfile.flush()

        try:
            if first is not None:
                write(first)
                for line in lines:
                    write(line)
            self.wfile.write(b"0\r\n\r\n")
        except (ServiceError, OSError, http.client.HTTPException):
            # Upstream kept failing (or the client went away) mid-stream;
            # terminating the chunked body early is the remaining signal.
            self.close_connection = True


class FleetServer(ThreadingHTTPServer):
    """The router's HTTP server; owns the :class:`FleetRouter`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: "tuple[str, int]", router: FleetRouter) -> None:
        super().__init__(address, FleetRequestHandler)
        self.router = router
        router.url = self.url

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Terminate the fleet (the server itself is shut down by callers)."""
        self.router.close()


def make_fleet(
    host: str = "127.0.0.1",
    port: int = 8000,
    size: int = 2,
    cache_dir: "Path | str | None" = None,
    health_interval: float = 0.5,
    **service_kwargs: Any,
) -> FleetServer:
    """Build a bound, fully-spawned fleet: router socket plus workers.

    The router binds first (workers need its URL for their cache tier),
    then every worker process is spawned and health-checked.  Returns
    the :class:`FleetServer`; callers run ``serve_forever`` themselves
    (tests run it on a thread) and must call ``close()`` afterwards.
    ``service_kwargs`` are forwarded to every worker's
    :class:`~repro.service.app.CompilationService` (``workers`` — engine
    processes per fleet worker — ``slots``, ``warm``, ...).
    """
    router = FleetRouter(
        size=size,
        cache_dir=cache_dir,
        worker_host=host,
        health_interval=health_interval,
        **service_kwargs,
    )
    server = FleetServer((host, port), router)
    try:
        router.start()
    except Exception:
        router.close()
        server.server_close()
        raise
    return server


def serve_fleet(
    host: str = "127.0.0.1",
    port: int = 8000,
    size: int = 2,
    **kwargs: Any,
) -> None:
    """Run a fleet until interrupted (the ``repro serve --fleet`` path)."""
    server = make_fleet(host=host, port=port, size=size, **kwargs)

    # Workers are non-daemon processes (they own engine pools), so a bare
    # SIGTERM to the router must still tear them down or they outlive it.
    def _terminate(signum: int, frame: Any) -> None:  # pragma: no cover
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        server.server_close()
        server.close()
