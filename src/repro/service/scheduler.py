"""The multi-slot job scheduler behind :class:`CompilationService`.

:class:`ServiceScheduler` replaces the old single FIFO executor thread:
``slots`` worker threads pull :class:`~repro.service.jobs.ServiceJob`
items off one priority queue and run each through the **shared** batch
engine, so several submitted batches make progress concurrently over one
warm worker pool (:meth:`BatchCompiler.run` is re-entrant — each slot's
call keeps its own state, the schedule cache takes its own lock, and the
pool multiplexes compilations from every slot).

Ordering is **priority, then FIFO**: larger ``ServiceJob.priority``
values run earlier; jobs of equal priority run in submission order (a
monotonic sequence number breaks ties, so no submission can starve
another at the same priority).

Cancellation is cooperative and checked **between compilations**: the
scheduler wraps each job's ``on_outcome`` callback, and when
:meth:`ServiceJob.cancel` has been requested it raises
:class:`~repro.exceptions.JobCancelledError` out of the engine's drain
loop instead of buffering the next outcome.  Outcomes already delivered
stay delivered, schedules already compiled stay cached — only the
remaining drain is abandoned.

Shutdown (:meth:`close`) is graceful: still-queued jobs are cancelled
immediately, running slots get ``drain_timeout`` seconds to finish their
current batch, and anything still running after the deadline receives a
cooperative cancel request.  Slot threads are daemons, so a runaway
compilation can never block interpreter exit.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, Protocol, Sequence

from repro.exceptions import JobCancelledError, ReproError
from repro.runtime.pool import BatchResult, JobOutcome
from repro.service.jobs import ServiceJob


class _Engine(Protocol):
    """What the scheduler needs from an engine (tests substitute stubs)."""

    def run(
        self,
        jobs: Sequence[object],
        on_outcome: "Callable[[JobOutcome], None] | None" = None,
    ) -> BatchResult: ...


#: Transition names handed to the scheduler's observer callback.
TRANSITIONS = ("running", "done", "failed", "cancelled")


class ServiceScheduler:
    """Run service jobs over ``slots`` concurrent worker threads.

    Parameters
    ----------
    engine:
        The shared batch engine; its ``run`` must be re-entrant
        (:class:`~repro.runtime.pool.BatchCompiler` is).
    slots:
        How many submitted batches may run concurrently.  ``1``
        reproduces the old strictly-serial executor.
    observer:
        Optional callback ``(job, transition)`` invoked after every state
        change the scheduler performs (``running``/``done``/``failed``/
        ``cancelled``) — the service journals through this hook.
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given, the
        scheduler records per-priority queue-latency histograms,
        per-slot busy-seconds counters and a per-transition job counter,
        and exposes slot/queue-depth gauges at scrape time.
    """

    def __init__(
        self,
        engine: _Engine,
        slots: int = 2,
        observer: "Callable[[ServiceJob, str], None] | None" = None,
        registry: "object | None" = None,
    ) -> None:
        if slots < 1:
            # A ReproError so the CLI maps `serve --slots 0` onto its
            # clean `error:` exit instead of a raw traceback.
            raise ReproError("the scheduler needs at least one slot")
        self.engine = engine
        self.slots = int(slots)
        self._observer = observer
        self._heap: "list[tuple[int, int, ServiceJob]]" = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._active: "dict[int, ServiceJob]" = {}
        self._closing = False
        self._m_queue_latency = None
        self._m_slot_busy = None
        self._m_transitions = None
        if registry is not None:
            self.bind_metrics(registry)

    def bind_metrics(self, registry: "Any") -> None:
        """Create the scheduler's instruments on ``registry``."""
        from repro.obs.metrics import QUEUE_LATENCY_BUCKETS

        self._m_queue_latency = registry.histogram(
            "repro_scheduler_queue_latency_seconds",
            "Seconds a job waited in the queue before a slot started it, "
            "by priority.",
            ("priority",),
            buckets=QUEUE_LATENCY_BUCKETS,
        )
        self._m_slot_busy = registry.counter(
            "repro_scheduler_slot_busy_seconds_total",
            "Seconds each slot spent executing batches; divide by uptime "
            "for per-slot utilisation.",
            ("slot",),
        )
        self._m_transitions = registry.counter(
            "repro_scheduler_jobs_total",
            "Job state transitions the scheduler performed.",
            ("transition",),
        )
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> "list[Any]":
        from repro.obs.metrics import Gauge

        stats = self.stats()
        slots = Gauge("repro_scheduler_slots", "Configured concurrent batch slots.")
        slots.set(stats["slots"])
        active = Gauge(
            "repro_scheduler_active_slots", "Slots currently executing a batch."
        )
        active.set(stats["active"])
        queued = Gauge(
            "repro_scheduler_queued_jobs", "Jobs waiting in the priority queue."
        )
        queued.set(stats["queued"])
        return [slots, active, queued]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the slot threads (idempotent; ``submit`` calls it)."""
        with self._cond:
            if self._closing:
                raise RuntimeError("the scheduler has been closed")
            while len(self._threads) < self.slots:
                index = len(self._threads)
                thread = threading.Thread(
                    target=self._run_slot,
                    args=(index,),
                    name=f"repro-scheduler-slot-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def close(self, drain_timeout: float | None = None) -> list[ServiceJob]:
        """Stop the scheduler gracefully; returns the jobs it cancelled.

        Still-queued jobs are cancelled immediately (they never started);
        running slots get ``drain_timeout`` seconds in total to finish
        their in-flight batches (``None`` waits indefinitely).  Jobs
        still running at the deadline get a cooperative cancel request
        and are included in the returned list; their daemon slot threads
        are abandoned rather than joined.
        """
        with self._cond:
            self._closing = True
            abandoned = [job for _, _, job in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        cancelled: list[ServiceJob] = []
        for job in abandoned:
            if job.cancel():
                cancelled.append(job)
                self._notify(job, "cancelled")
        deadline = (
            None if drain_timeout is None else time.monotonic() + drain_timeout
        )
        for thread in self._threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.monotonic()))
        with self._cond:
            still_running = list(self._active.values())
        for job in still_running:
            # Past the drain deadline: ask the batch to stop at its next
            # outcome boundary.  The slot thread (a daemon) will finish
            # the in-memory transition if the process lives long enough;
            # the observer is told *now*, so the cancellation reaches the
            # journal before the service closes it — otherwise a restart
            # would resurrect work the operator shut down on purpose.
            # Guarded: a job that finished right around the deadline must
            # not get a stale "cancelled" journaled over its "done".
            if job.cancel():
                cancelled.append(job)
                self._notify(job, "cancelled")
        return cancelled

    def active_count(self) -> int:
        """Slots still executing a batch (used by graceful shutdown)."""
        with self._cond:
            return len(self._active)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, job: ServiceJob) -> None:
        """Queue a job; larger priorities run earlier, ties run FIFO."""
        self.start()
        job.enqueued_at = time.monotonic()
        with self._cond:
            if self._closing:
                raise RuntimeError("the scheduler has been closed")
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._cond.notify()

    def stats(self) -> dict[str, int]:
        """Queue depth and slot occupancy (for the health endpoint)."""
        with self._cond:
            return {
                "slots": self.slots,
                "active": len(self._active),
                "queued": len(self._heap),
            }

    # ------------------------------------------------------------------
    # slot loop
    # ------------------------------------------------------------------
    def _run_slot(self, index: int) -> None:
        while True:
            with self._cond:
                while not self._heap and not self._closing:
                    self._cond.wait()
                if self._closing and not self._heap:
                    return
                _, _, job = heapq.heappop(self._heap)
                # try_start is atomic with ServiceJob.cancel: a job
                # cancelled while queued (or racing this very pop) is
                # dropped without ever occupying the slot.
                if not job.try_start():
                    continue
                self._active[index] = job
            if self._m_queue_latency is not None and job.enqueued_at is not None:
                self._m_queue_latency.labels(priority=str(job.priority)).observe(
                    time.monotonic() - job.enqueued_at
                )
            busy_start = time.perf_counter()
            try:
                self._execute(job)
            finally:
                if self._m_slot_busy is not None:
                    self._m_slot_busy.labels(slot=str(index)).inc(
                        time.perf_counter() - busy_start
                    )
                with self._cond:
                    self._active.pop(index, None)

    def _execute(self, job: ServiceJob) -> None:
        self._notify(job, "running")

        def deliver(outcome: JobOutcome) -> None:
            # The cancellation point "between compilations": refuse the
            # next outcome instead of buffering it.
            if job.cancel_requested:
                raise JobCancelledError(job.job_id)
            job.add_outcome(outcome)

        try:
            if job.cancel_requested:
                raise JobCancelledError(job.job_id)
            result = self.engine.run(job.jobs, on_outcome=deliver)
        except JobCancelledError:
            job.mark_cancelled()
            self._notify(job, "cancelled")
        except Exception as exc:  # noqa: BLE001 - job-scoped failure, not ours
            job.mark_failed(exc)
            self._notify(job, "failed")
        else:
            job.mark_done(result)
            self._notify(job, "done")

    def _notify(self, job: ServiceJob, transition: str) -> None:
        if self._m_transitions is not None:
            self._m_transitions.labels(transition=transition).inc()
        if self._observer is not None:
            try:
                self._observer(job, transition)
            except Exception:  # noqa: BLE001 - observers must not kill slots
                pass
