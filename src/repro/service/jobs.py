"""Service-side job bookkeeping: submissions, states, streamed outcomes.

A :class:`ServiceJob` tracks one submitted manifest through its life
cycle (``queued`` → ``running`` → ``done``/``failed``) and buffers the
:class:`~repro.runtime.pool.JobOutcome` items the batch engine delivers
via its completion callback.  All mutation happens under one condition
variable, so any number of HTTP handler threads can stream outcomes
while the executor thread appends them.

Job ids are **derived from the compile-job fingerprints** (not from a
counter or a clock): the same manifest always maps to the same id, which
makes submission idempotent — a client retrying a POST neither duplicates
work nor loses track of the original run.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Iterator, Sequence

from repro.runtime.jobs import CompileJob
from repro.runtime.pool import BatchResult, JobOutcome

#: The four states a submitted job moves through.
JOB_STATUSES = ("queued", "running", "done", "failed")


def job_batch_id(jobs: Sequence[CompileJob]) -> str:
    """Deterministic id of a submission: a digest over its job fingerprints.

    Built from :meth:`CompileJob.fingerprint` (compile inputs *and*
    evaluation settings) **plus** the presentation metadata
    (``label``/``parameter``/``value``) — metadata never enters the
    compile fingerprints, but it does appear in result records, so two
    manifests that would produce different records must never share an
    id.  A byte-for-byte resubmission always does.
    """
    payload = "\n".join(
        f"{job.fingerprint()}|{job.label}|{job.parameter}|{job.value!r}"
        for job in jobs
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ServiceJob:
    """One submitted batch: its compile jobs, state and streamed outcomes."""

    def __init__(self, job_id: str, jobs: Sequence[CompileJob]) -> None:
        self.job_id = job_id
        self.jobs: list[CompileJob] = list(jobs)
        self.status = "queued"
        self.outcomes: list[JobOutcome] = []
        self.error: "dict[str, str] | None" = None
        self.summary: "dict[str, object] | None" = None
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._cond = threading.Condition()

    # ------------------------------------------------------------------
    # executor-side transitions
    # ------------------------------------------------------------------
    def add_outcome(self, outcome: JobOutcome) -> None:
        """Record one completed outcome (the engine's ``on_outcome`` hook)."""
        with self._cond:
            self.outcomes.append(outcome)
            self._cond.notify_all()

    def mark_running(self) -> None:
        with self._cond:
            self.status = "running"
            self.started_at = time.time()
            self._cond.notify_all()

    def mark_done(self, result: BatchResult) -> None:
        with self._cond:
            self.status = "done"
            self.summary = result.summary()
            self.finished_at = time.time()
            self._cond.notify_all()

    def mark_failed(self, exc: BaseException) -> None:
        with self._cond:
            self.status = "failed"
            self.error = {"type": type(exc).__name__, "message": str(exc)}
            self.finished_at = time.time()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed")

    def iter_outcomes(self, timeout: float | None = None) -> Iterator[JobOutcome]:
        """Yield outcomes in job order, blocking until each is available.

        The iterator ends when every buffered outcome has been yielded
        and the job has reached a terminal state; a job that fails
        mid-batch still yields the outcomes that landed before the
        failure.  ``timeout`` bounds the *total* wait; exceeding it
        raises :class:`TimeoutError`.
        """
        index = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                while len(self.outcomes) <= index and not self.finished:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if len(self.outcomes) <= index and not self.finished:
                                raise TimeoutError(
                                    f"timed out streaming job {self.job_id!r}"
                                )
                if len(self.outcomes) <= index:
                    return
                outcome = self.outcomes[index]
                index += 1
            yield outcome

    def status_payload(self) -> dict[str, object]:
        """The job's public JSON representation (the status endpoint)."""
        with self._cond:
            payload: dict[str, object] = {
                "job_id": self.job_id,
                "status": self.status,
                "jobs": len(self.jobs),
                "completed": len(self.outcomes),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "job_specs": [job.describe() for job in self.jobs],
            }
            if self.summary is not None:
                payload["summary"] = dict(self.summary)
            if self.error is not None:
                payload["error"] = dict(self.error)
        return payload


class JobStore:
    """Thread-safe id → :class:`ServiceJob` table."""

    def __init__(self) -> None:
        self._jobs: dict[str, ServiceJob] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def get(self, job_id: str) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def put(self, job: ServiceJob) -> None:
        with self._lock:
            self._jobs[job.job_id] = job

    def all(self) -> list[ServiceJob]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def counts(self) -> dict[str, int]:
        """How many jobs sit in each state (for the health endpoint)."""
        counts = {status: 0 for status in JOB_STATUSES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
        return counts
