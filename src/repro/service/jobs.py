"""Service-side job bookkeeping: submissions, states, streamed outcomes.

A :class:`ServiceJob` tracks one submitted manifest through its life
cycle (``queued`` → ``running`` → ``done``/``failed``/``cancelled``) and
buffers the :class:`~repro.runtime.pool.JobOutcome` items the batch
engine delivers via its completion callback.  All mutation happens under
one condition variable, so any number of HTTP handler threads can stream
outcomes while a scheduler slot thread appends them.

Job ids are **derived from the compile-job fingerprints** (not from a
counter or a clock): the same manifest always maps to the same id, which
makes submission idempotent — a client retrying a POST neither duplicates
work nor loses track of the original run.

Cancellation is cooperative: :meth:`ServiceJob.cancel` flips a queued job
straight to ``cancelled``, while a running job only gets a request flag —
the scheduler checks it between compilations and finishes the transition
(:meth:`ServiceJob.mark_cancelled`).  Jobs restored from the on-disk
journal after a restart (:mod:`repro.service.journal`) carry
``replayed=True`` and keep their terminal state and summary even though
their in-memory outcome buffers are gone.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any, Iterator, Sequence

from repro.runtime.jobs import CompileJob
from repro.runtime.pool import BatchResult, JobOutcome

#: The five states a submitted job moves through.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


def job_batch_id(jobs: Sequence[CompileJob]) -> str:
    """Deterministic id of a submission: a digest over its job fingerprints.

    Built from :meth:`CompileJob.fingerprint` (compile inputs *and*
    evaluation settings) **plus** the presentation metadata
    (``label``/``parameter``/``value``) — metadata never enters the
    compile fingerprints, but it does appear in result records, so two
    manifests that would produce different records must never share an
    id.  A byte-for-byte resubmission always does.
    """
    payload = "\n".join(
        f"{job.fingerprint()}|{job.label}|{job.parameter}|{job.value!r}"
        for job in jobs
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ServiceJob:
    """One submitted batch: its compile jobs, state and streamed outcomes.

    ``priority`` orders jobs in the scheduler queue — larger values run
    earlier, equal values run in submission order (FIFO within priority).
    """

    def __init__(
        self, job_id: str, jobs: Sequence[CompileJob], priority: int = 0
    ) -> None:
        self.job_id = job_id
        self.jobs: list[CompileJob] = list(jobs)
        self.priority = int(priority)
        self.status = "queued"
        self.outcomes: list[JobOutcome] = []
        self.outcome_times: list[float] = []
        # Pre-encoded ndjson "outcome" lines, one per outcome, built once
        # when the outcome lands.  Every client replaying this job's
        # stream gets these bytes verbatim — no per-reader JSON encode.
        self.encoded_lines: list[bytes] = []
        self.error: "dict[str, str] | None" = None
        self.summary: "dict[str, object] | None" = None
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.cancel_requested = False
        self.replayed = False
        # Optional per-line sink (the durable result store's writer):
        # called with each encoded outcome line right after it lands.
        self.on_encoded_line: "Any | None" = None
        # A finished stream restored from the result store after a
        # restart: every line (outcomes + the terminal end line), served
        # verbatim instead of the in-memory buffers.
        self.stored_lines: "list[bytes] | None" = None
        # Monotonic queue-entry time, stamped by ServiceScheduler.submit;
        # the queue-latency histogram is measured from it.
        self.enqueued_at: float | None = None
        self._total_jobs = len(self.jobs)
        self._spec_rows: "list[dict[str, object]] | None" = None
        self._cond = threading.Condition()

    @classmethod
    def from_journal(
        cls,
        job_id: str,
        status: str,
        created_at: float,
        priority: int = 0,
        total_jobs: int = 0,
        spec_rows: "Sequence[dict[str, object]] | None" = None,
        summary: "dict[str, object] | None" = None,
        error: "dict[str, str] | None" = None,
        started_at: float | None = None,
        finished_at: float | None = None,
    ) -> "ServiceJob":
        """Rebuild a terminal job from replayed journal events.

        The compile jobs themselves are gone with the old process, so the
        record keeps the journaled spec rows and counts instead; streamed
        results are no longer available, but status, summary and error
        survive the restart.
        """
        job = cls(job_id, [], priority=priority)
        job.status = status
        job.created_at = created_at
        job.started_at = started_at
        job.finished_at = finished_at
        job.summary = dict(summary) if summary is not None else None
        job.error = dict(error) if error is not None else None
        job.replayed = True
        job._total_jobs = int(total_jobs)
        job._spec_rows = [dict(row) for row in spec_rows] if spec_rows else None
        return job

    # ------------------------------------------------------------------
    # executor-side transitions
    # ------------------------------------------------------------------
    def add_outcome(self, outcome: JobOutcome) -> None:
        """Record one completed outcome (the engine's ``on_outcome`` hook).

        The outcome's streamed ndjson line is encoded here, exactly once:
        the record bytes come from :meth:`JobOutcome.encoded_record` (the
        engine side encodes each record a single time no matter how many
        jobs share it) and are spliced into the sorted-key envelope, so
        the stored line is byte-identical to JSON-encoding the equivalent
        ``{"type": "outcome", ...}`` dict with sorted keys.
        """
        with self._cond:
            index = len(self.outcomes)
            self.outcomes.append(outcome)
            self.outcome_times.append(time.monotonic())
            # Sorted key order of the full line dict is: compile_fingerprint,
            # compile_time_s, fingerprint, from_cache, index, job_id,
            # record, type — so the record bytes and the constant type tail
            # splice onto the head's closing brace.
            head = json.dumps(
                {
                    "compile_fingerprint": outcome.compile_fingerprint,
                    "compile_time_s": outcome.compile_time_s,
                    "fingerprint": outcome.fingerprint,
                    "from_cache": outcome.from_cache,
                    "index": index,
                    "job_id": self.job_id,
                },
                sort_keys=True,
            ).encode("utf-8")
            line = (
                head[:-1]
                + b', "record": '
                + outcome.encoded_record()
                + b', "type": "outcome"}'
            )
            self.encoded_lines.append(line)
            self._cond.notify_all()
        sink = self.on_encoded_line
        if sink is not None:
            # Outside the condition: the durable store's file append must
            # not block readers waiting on the next outcome.  Outcomes
            # for one job arrive from a single slot thread, so the
            # append order matches the stream order.
            try:
                sink(line)
            except Exception:  # noqa: BLE001 - durability is best-effort
                pass

    def try_start(self) -> bool:
        """Atomically move ``queued`` → ``running``; ``False`` otherwise.

        The check-and-transition happens under the job's own lock, the
        same one :meth:`cancel` takes — so a job can be started or
        cancelled, never both: whichever gets the lock first wins, and a
        scheduler slot that loses simply drops the job.
        """
        with self._cond:
            if self.status != "queued" or self.cancel_requested:
                return False
            self.status = "running"
            self.started_at = time.time()
            self._cond.notify_all()
            return True

    def mark_done(self, result: BatchResult) -> None:
        with self._cond:
            self.status = "done"
            self.summary = result.summary()
            self.finished_at = time.time()
            self._cond.notify_all()

    def mark_failed(self, exc: BaseException) -> None:
        with self._cond:
            self.status = "failed"
            self.error = {"type": type(exc).__name__, "message": str(exc)}
            self.finished_at = time.time()
            self._cond.notify_all()

    def mark_cancelled(self) -> None:
        """Finish the transition to ``cancelled`` (scheduler side)."""
        with self._cond:
            self.status = "cancelled"
            self.finished_at = time.time()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation; ``False`` when the job is already terminal.

        A queued job transitions to ``cancelled`` immediately (the
        scheduler discards it when popped); a running one is flagged and
        lands in ``cancelled`` cooperatively, at the next outcome
        boundary — outcomes already streamed stay streamed.
        """
        with self._cond:
            if self.status in TERMINAL_STATUSES:
                return False
            self.cancel_requested = True
            if self.status == "queued":
                self.status = "cancelled"
                self.finished_at = time.time()
            self._cond.notify_all()
            return True

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def iter_outcomes(self, timeout: float | None = None) -> Iterator[JobOutcome]:
        """Yield outcomes in job order, blocking until each is available.

        The iterator ends when every buffered outcome has been yielded
        and the job has reached a terminal state; a job that fails (or is
        cancelled) mid-batch still yields the outcomes that landed before
        the interruption.  ``timeout`` bounds the *total* wait; exceeding
        it raises :class:`TimeoutError`.
        """
        index = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                while len(self.outcomes) <= index and not self.finished:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if len(self.outcomes) <= index and not self.finished:
                                raise TimeoutError(
                                    f"timed out streaming job {self.job_id!r}"
                                )
                if len(self.outcomes) <= index:
                    return
                outcome = self.outcomes[index]
                index += 1
            yield outcome

    def iter_encoded_lines(self, timeout: float | None = None) -> Iterator[bytes]:
        """Yield the pre-encoded outcome lines, blocking like
        :meth:`iter_outcomes`.

        These are the bytes :meth:`add_outcome` built when each outcome
        landed — the streaming transport writes them to the wire without
        any re-serialisation.  ``timeout`` bounds the total wait.
        """
        index = 0
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                while len(self.encoded_lines) <= index and not self.finished:
                    if deadline is None:
                        self._cond.wait()
                    else:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            if len(self.encoded_lines) <= index and not self.finished:
                                raise TimeoutError(
                                    f"timed out streaming job {self.job_id!r}"
                                )
                if len(self.encoded_lines) <= index:
                    return
                line = self.encoded_lines[index]
                index += 1
            yield line

    def spec_rows(self) -> list[dict[str, object]]:
        """Human-readable job specs (journaled rows for replayed jobs)."""
        if self._spec_rows is not None:
            return [dict(row) for row in self._spec_rows]
        return [job.describe() for job in self.jobs]

    def status_payload(self) -> dict[str, object]:
        """The job's public JSON representation (the status endpoint)."""
        with self._cond:
            payload: dict[str, object] = {
                "job_id": self.job_id,
                "status": self.status,
                "priority": self.priority,
                "jobs": self._total_jobs,
                "completed": (
                    len(self.stored_lines) - 1
                    if self.stored_lines is not None and not self.outcomes
                    else len(self.outcomes)
                ),
                "created_at": self.created_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "cancel_requested": self.cancel_requested,
                "job_specs": self.spec_rows(),
            }
            if self.replayed:
                payload["replayed"] = True
            if self.summary is not None:
                payload["summary"] = dict(self.summary)
            if self.error is not None:
                payload["error"] = dict(self.error)
        return payload


class JobStore:
    """Thread-safe id → :class:`ServiceJob` table.

    Readers get **snapshots**: :meth:`all` and :meth:`counts` copy the
    table contents under the lock before iterating, so a streaming
    handler enumerating jobs never races a concurrent ``put`` mutating
    the underlying dict (a ``RuntimeError: dictionary changed size
    during iteration`` under the old in-place iteration).
    """

    def __init__(self) -> None:
        self._jobs: dict[str, ServiceJob] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def get(self, job_id: str) -> ServiceJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def put(self, job: ServiceJob) -> None:
        with self._lock:
            self._jobs[job.job_id] = job

    def snapshot(self) -> list[ServiceJob]:
        """A point-in-time copy of the table's values (unordered)."""
        with self._lock:
            return list(self._jobs.values())

    def all(self) -> list[ServiceJob]:
        """Every known job, oldest submission first (a stable snapshot)."""
        # Sort outside the lock: the snapshot list is private to this
        # call, and created_at/job_id are immutable after construction.
        return sorted(self.snapshot(), key=lambda job: (job.created_at, job.job_id))

    def counts(self) -> dict[str, int]:
        """How many jobs sit in each state (for the health endpoint)."""
        counts = {status: 0 for status in JOB_STATUSES}
        for job in self.snapshot():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts
