"""Exception hierarchy for the S-SYNC reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so a
caller embedding the compiler can catch a single exception type at its
boundary while still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class CircuitError(ReproError):
    """Raised for malformed circuits or gates (bad qubit index, arity...)."""


class DeviceError(ReproError):
    """Raised for malformed QCCD device descriptions."""


class MappingError(ReproError):
    """Raised when an initial mapping cannot be constructed.

    Typical causes: the circuit uses more qubits than the device has
    slots, or a mapping strategy is asked to place qubits on a trap that
    is already full.
    """


class SchedulingError(ReproError):
    """Raised when the scheduler cannot make progress on a circuit."""


class StateError(ReproError):
    """Raised for invalid mutations of the device occupancy state."""


class NoiseModelError(ReproError):
    """Raised for invalid noise / timing model configurations."""


class ManifestError(ReproError):
    """Raised for malformed job manifests / batch requests.

    Covers everything a declarative job description can get wrong —
    invalid JSON, unknown keys, unknown compiler names, device specs
    that do not resolve — so service front-ends can map exactly this
    type onto a structured 4xx response while treating every other
    :class:`ReproError` as a server-side failure.
    """


class JobCancelledError(ReproError):
    """Cooperative-cancellation signal for an in-flight service job.

    Raised from inside a batch's ``on_outcome`` callback (and caught by
    the service scheduler) when :meth:`ServiceJob.cancel` was requested
    while the job was running: the engine stops draining outcomes between
    compilations and the job lands in the terminal ``cancelled`` state.
    Library users never see this escape the service layer.
    """


class ServiceError(ReproError):
    """Raised by the compilation-service client for error responses.

    Carries the HTTP ``status`` and the structured error ``payload``
    (the parsed JSON body) alongside the message.
    """

    def __init__(
        self, message: str, status: int = 0, payload: "dict | None" = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
