"""Schedule evaluator: execution time and application success rate.

This is the "Real Noise Simulator" box of Fig. 1.  It walks a compiled
:class:`~repro.schedule.Schedule` in order, maintains per-trap clocks and
per-trap thermal state, and produces:

* the estimated **execution time** (the makespan over trap clocks — traps
  operate in parallel, an operation advances only the clocks of the traps
  it touches);
* the **success rate** — the product of all gate fidelities under the
  Eq.-(4) model, with SWAPs counted as three two-qubit gates and
  single-qubit gates at 99.9999 %.

The evaluator can also selectively ignore shuttle or SWAP costs, which is
how the Fig. 16 optimality bounds ("perfect shuttle", "perfect SWAP",
"ideal") are computed without a brute-force search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import NoiseModelError
from repro.noise.fidelity import FidelityModel, SuccessRateAccumulator
from repro.noise.gate_times import (
    GateImplementation,
    single_qubit_gate_time,
    two_qubit_gate_time,
)
from repro.noise.heating import HeatingParameters, ThermalLedger
from repro.noise.operation_times import OperationTimes
from repro.schedule.operations import (
    GateOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one schedule under one noise configuration."""

    success_rate: float
    log_success_rate: float
    execution_time_us: float
    total_gate_time_us: float
    total_shuttle_time_us: float
    gate_count_2q: int
    gate_count_1q: int
    swap_count: int
    shuttle_count: int
    gate_implementation: GateImplementation
    details: dict[str, float] = field(default_factory=dict)

    @property
    def execution_time_s(self) -> float:
        """Execution time in seconds."""
        return self.execution_time_us / 1.0e6


@dataclass(frozen=True)
class EvaluatorConfig:
    """Knobs of the evaluator.

    ``ignore_shuttle_cost`` and ``ignore_swap_cost`` implement the
    Fig. 16 idealised scenarios; both default to off.
    """

    gate_implementation: GateImplementation | str = GateImplementation.FM
    heating: HeatingParameters = HeatingParameters()
    operation_times: OperationTimes = OperationTimes()
    ignore_shuttle_cost: bool = False
    ignore_swap_cost: bool = False
    include_single_qubit_gates: bool = True


class ScheduleEvaluator:
    """Evaluates schedules for execution time and success rate."""

    def __init__(self, config: EvaluatorConfig | None = None) -> None:
        self.config = config or EvaluatorConfig()
        self._implementation = GateImplementation.from_name(self.config.gate_implementation)
        self._fidelity = FidelityModel(heating=self.config.heating)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def evaluate(self, schedule: Schedule) -> EvaluationResult:
        """Walk ``schedule`` and return timing and success-rate estimates."""
        clocks: dict[int, float] = {trap.trap_id: 0.0 for trap in schedule.device.traps}
        thermal = ThermalLedger(params=self.config.heating)
        accumulator = SuccessRateAccumulator()
        total_gate_time = 0.0
        total_shuttle_time = 0.0

        for operation in schedule:
            if isinstance(operation, GateOperation):
                duration = self._apply_gate(operation, clocks, thermal, accumulator)
                total_gate_time += duration
            elif isinstance(operation, SwapOperation):
                duration = self._apply_swap(operation, clocks, thermal, accumulator)
                total_gate_time += duration
            elif isinstance(operation, ShuttleOperation):
                duration = self._apply_shuttle(operation, clocks, thermal)
                total_shuttle_time += duration
            elif isinstance(operation, SpaceShiftOperation):
                duration = self._apply_space_shift(operation, clocks, thermal)
                total_shuttle_time += duration
            else:  # pragma: no cover - defensive
                raise NoiseModelError(f"unknown operation type {type(operation).__name__}")

        execution_time = max(clocks.values(), default=0.0)
        return EvaluationResult(
            success_rate=accumulator.success_rate,
            log_success_rate=accumulator.log_success_rate,
            execution_time_us=execution_time,
            total_gate_time_us=total_gate_time,
            total_shuttle_time_us=total_shuttle_time,
            gate_count_2q=schedule.two_qubit_gate_count,
            gate_count_1q=schedule.single_qubit_gate_count,
            swap_count=schedule.swap_count,
            shuttle_count=schedule.shuttle_count,
            gate_implementation=self._implementation,
            details={
                "mean_phonon_total": thermal.total_phonon(),
                "evaluated_gate_fidelities": float(accumulator.gate_count),
            },
        )

    # ------------------------------------------------------------------
    # per-operation handlers
    # ------------------------------------------------------------------
    def _two_qubit_time(self, chain_length: int, ion_separation: int) -> float:
        return two_qubit_gate_time(self._implementation, max(chain_length, 2), ion_separation)

    def _apply_gate(
        self,
        operation: GateOperation,
        clocks: dict[int, float],
        thermal: ThermalLedger,
        accumulator: SuccessRateAccumulator,
    ) -> float:
        trap_state = thermal.trap(operation.trap)
        if operation.gate.is_two_qubit:
            duration = self._two_qubit_time(operation.chain_length, operation.ion_separation)
            pending = trap_state.consume_accumulated_time()
            fidelity = self._fidelity.two_qubit_gate_fidelity(
                duration, operation.chain_length, trap_state.mean_phonon, pending
            )
            accumulator.multiply(fidelity)
        else:
            duration = single_qubit_gate_time()
            if self.config.include_single_qubit_gates:
                accumulator.multiply(self._fidelity.single_qubit_gate_fidelity_value())
        clocks[operation.trap] = clocks.get(operation.trap, 0.0) + duration
        return duration

    def _apply_swap(
        self,
        operation: SwapOperation,
        clocks: dict[int, float],
        thermal: ThermalLedger,
        accumulator: SuccessRateAccumulator,
    ) -> float:
        base_time = self._two_qubit_time(operation.chain_length, operation.ion_separation)
        duration = 3.0 * base_time
        if self.config.ignore_swap_cost:
            return 0.0
        trap_state = thermal.trap(operation.trap)
        pending = trap_state.consume_accumulated_time()
        fidelity = self._fidelity.swap_gate_fidelity(
            base_time, operation.chain_length, trap_state.mean_phonon, pending
        )
        accumulator.multiply(fidelity)
        clocks[operation.trap] = clocks.get(operation.trap, 0.0) + duration
        return duration

    def _apply_shuttle(
        self,
        operation: ShuttleOperation,
        clocks: dict[int, float],
        thermal: ThermalLedger,
    ) -> float:
        if self.config.ignore_shuttle_cost:
            return 0.0
        duration = self.config.operation_times.shuttle_us(
            segments=operation.segments, junctions=operation.junctions
        )
        thermal.record_shuttle(
            operation.source_trap, operation.target_trap, operation.segments, operation.junctions
        )
        thermal.trap(operation.source_trap).record_idle(duration)
        thermal.trap(operation.target_trap).record_idle(duration)
        # Both traps are busy for the whole split/move/merge sequence, and a
        # shuttle cannot start before either endpoint is free.
        start = max(clocks.get(operation.source_trap, 0.0), clocks.get(operation.target_trap, 0.0))
        clocks[operation.source_trap] = start + duration
        clocks[operation.target_trap] = start + duration
        return duration

    def _apply_space_shift(
        self,
        operation: SpaceShiftOperation,
        clocks: dict[int, float],
        thermal: ThermalLedger,
    ) -> float:
        if self.config.ignore_shuttle_cost:
            return 0.0
        duration = self.config.operation_times.move_us * operation.distance
        thermal.trap(operation.trap).record_idle(duration)
        clocks[operation.trap] = clocks.get(operation.trap, 0.0) + duration
        return duration


def evaluate_schedule(
    schedule: Schedule,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    heating: HeatingParameters | None = None,
    operation_times: OperationTimes | None = None,
    ignore_shuttle_cost: bool = False,
    ignore_swap_cost: bool = False,
) -> EvaluationResult:
    """One-call convenience wrapper around :class:`ScheduleEvaluator`."""
    config = EvaluatorConfig(
        gate_implementation=gate_implementation,
        heating=heating or HeatingParameters(),
        operation_times=operation_times or OperationTimes(),
        ignore_shuttle_cost=ignore_shuttle_cost,
        ignore_swap_cost=ignore_swap_cost,
    )
    return ScheduleEvaluator(config).evaluate(schedule)
