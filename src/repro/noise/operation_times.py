"""QCCD transport operation times — Table 1 of the paper.

| Operation              | Time            |
|------------------------|-----------------|
| Move (one segment)     | 5 µs            |
| Split                  | 80 µs           |
| Merge                  | 80 µs           |
| Cross n-path junction  | 40 + 20·n µs    |

The SWAP gate is not a transport operation: it is three two-qubit gates
and its duration comes from :mod:`repro.noise.gate_times`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import NoiseModelError


@dataclass(frozen=True)
class OperationTimes:
    """Transport timing constants (µs), defaulting to the paper's Table 1."""

    move_us: float = 5.0
    split_us: float = 80.0
    merge_us: float = 80.0
    junction_base_us: float = 40.0
    junction_per_path_us: float = 20.0

    def __post_init__(self) -> None:
        for field_name in ("move_us", "split_us", "merge_us", "junction_base_us", "junction_per_path_us"):
            if getattr(self, field_name) < 0:
                raise NoiseModelError(f"{field_name} cannot be negative")

    def junction_crossing_us(self, num_paths: int = 3) -> float:
        """Duration of crossing a junction with ``num_paths`` channels."""
        if num_paths < 2:
            raise NoiseModelError("a junction joins at least two paths")
        return self.junction_base_us + self.junction_per_path_us * num_paths

    def shuttle_us(self, segments: int, junctions: int, junction_paths: int = 3) -> float:
        """Total duration of one shuttle: split + moves + junction crossings + merge.

        Parameters
        ----------
        segments:
            Number of straight electrode segments traversed (one "move"
            each).
        junctions:
            Number of junctions crossed along the path.
        junction_paths:
            Channel count of each junction (3 for an X/T junction).
        """
        if segments < 1:
            raise NoiseModelError("a shuttle traverses at least one segment")
        if junctions < 0:
            raise NoiseModelError("junction count cannot be negative")
        return (
            self.split_us
            + self.move_us * segments
            + self.junction_crossing_us(junction_paths) * junctions
            + self.merge_us
        )

    def as_table(self) -> dict[str, float]:
        """Table-1 rows as a name → µs mapping (for reporting)."""
        return {
            "move": self.move_us,
            "split": self.split_us,
            "merge": self.merge_us,
            "cross 3-path junction": self.junction_crossing_us(3),
        }


#: Module-level default instance using the paper's published values.
PAPER_OPERATION_TIMES = OperationTimes()
