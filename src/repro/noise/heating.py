"""Motional heating model for QCCD transport (paper §4.1, "Success Rate").

Transport operations heat the ion chain: splitting or merging a chain
adds ``k1`` quanta of motional energy and every shuttled segment adds
``k2`` quanta, increasing the mean phonon occupation ``n̄`` of the traps
involved.  Subsequent two-qubit gates in a hot trap are less faithful —
the fidelity model multiplies the occupation by a chain-length-dependent
scale factor ``A ∝ N / ln N`` (thermal laser-beam instability).

The paper uses ``k1 = 0.1``, ``k2 = 0.01`` and a constant background
heating rate ``Γ = 1`` (per second), matching Murali et al. [48].
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import NoiseModelError


@dataclass(frozen=True)
class HeatingParameters:
    """Constants of the heating model (paper defaults)."""

    #: Quanta added to n̄ by one split or one merge operation.
    k1: float = 0.1
    #: Quanta added to n̄ per shuttled segment (and per junction crossing).
    k2: float = 0.01
    #: Background heating rate Γ in s⁻¹.
    background_rate_per_s: float = 1.0
    #: Calibration constant A₀ of A = A₀ · N / ln N.
    amplitude_scale: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.k1 < 0 or self.k2 < 0:
            raise NoiseModelError("heating quanta k1 and k2 cannot be negative")
        if self.background_rate_per_s < 0:
            raise NoiseModelError("the background heating rate cannot be negative")
        if self.amplitude_scale <= 0:
            raise NoiseModelError("the amplitude scale must be positive")

    def amplitude_factor(self, chain_length: int) -> float:
        """The scale factor A = A₀ · N / ln N for a chain of N ions."""
        if chain_length < 1:
            raise NoiseModelError("chain length must be at least 1")
        if chain_length == 1:
            return self.amplitude_scale
        return self.amplitude_scale * chain_length / math.log(chain_length)


#: Module-level default using the paper's constants.
PAPER_HEATING = HeatingParameters()


@dataclass
class TrapThermalState:
    """Mutable thermal record of one trap during schedule evaluation."""

    mean_phonon: float = 0.0
    #: Accumulated transport/idle time (µs) since the last gate on this trap.
    accumulated_time_us: float = 0.0
    total_splits: int = 0
    total_merges: int = 0
    total_segments: int = 0

    def record_split(self, params: HeatingParameters) -> None:
        """Apply the heating of one chain split."""
        self.mean_phonon += params.k1
        self.total_splits += 1

    def record_merge(self, params: HeatingParameters) -> None:
        """Apply the heating of one chain merge."""
        self.mean_phonon += params.k1
        self.total_merges += 1

    def record_transport(self, params: HeatingParameters, segments: int, junctions: int = 0) -> None:
        """Apply the heating of moving through segments and junctions."""
        if segments < 0 or junctions < 0:
            raise NoiseModelError("segments and junctions cannot be negative")
        self.mean_phonon += params.k2 * (segments + junctions)
        self.total_segments += segments

    def record_idle(self, duration_us: float) -> None:
        """Accumulate transport / waiting time attributed to this trap."""
        if duration_us < 0:
            raise NoiseModelError("durations cannot be negative")
        self.accumulated_time_us += duration_us

    def consume_accumulated_time(self) -> float:
        """Return and reset the accumulated transport time (used at gate time)."""
        value = self.accumulated_time_us
        self.accumulated_time_us = 0.0
        return value


@dataclass
class ThermalLedger:
    """Per-trap thermal state for a whole device."""

    params: HeatingParameters = field(default_factory=HeatingParameters)
    _traps: dict[int, TrapThermalState] = field(default_factory=dict)

    def trap(self, trap_id: int) -> TrapThermalState:
        """The thermal state of one trap (created on first access)."""
        if trap_id not in self._traps:
            self._traps[trap_id] = TrapThermalState()
        return self._traps[trap_id]

    def record_shuttle(self, source_trap: int, target_trap: int, segments: int, junctions: int) -> None:
        """Apply the full heating of one shuttle: split at source, transport, merge at target."""
        self.trap(source_trap).record_split(self.params)
        self.trap(target_trap).record_merge(self.params)
        # The ion being moved carries its motional energy into the target chain.
        self.trap(target_trap).record_transport(self.params, segments, junctions)

    def mean_phonon(self, trap_id: int) -> float:
        """Current n̄ of a trap."""
        return self.trap(trap_id).mean_phonon

    def total_phonon(self) -> float:
        """Sum of n̄ over all traps (diagnostic)."""
        return sum(state.mean_phonon for state in self._traps.values())
