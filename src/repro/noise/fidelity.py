"""Gate fidelity model — Eq. (4) of the paper.

The fidelity of a two-qubit gate executed in a trap with mean phonon
occupation ``n̄`` and chain length ``N``, taking time ``τ``, is

    F = 1 − Γ·τ − A·(2·n̄ + 1)

with ``A = A₀ · N / ln N`` capturing thermal laser-beam instability and
``Γ`` the constant background heating rate.  ``τ`` includes the
transport time accumulated on that trap since its previous gate, so long
shuttling detours show up as fidelity loss even when they do not add
SWAP gates.  Single-qubit gates use a fixed fidelity of 99.9999 %
(paper §4.2); SWAP gates are three two-qubit gates.

The success rate of a whole application is the product of its gate
fidelities.  Because products of thousands of factors underflow quickly,
:class:`SuccessRateAccumulator` tracks the log-fidelity sum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import NoiseModelError
from repro.noise.heating import HeatingParameters

#: Fidelity of a single-qubit gate (paper §4.2).
SINGLE_QUBIT_GATE_FIDELITY = 0.999999

#: Number of two-qubit gates a SWAP decomposes into.
SWAP_TWO_QUBIT_GATE_COUNT = 3

#: Microseconds per second, for converting Γ·τ.
_US_PER_S = 1.0e6


@dataclass(frozen=True)
class FidelityModel:
    """Eq.-(4) fidelity evaluation with configurable heating parameters."""

    heating: HeatingParameters = HeatingParameters()
    single_qubit_fidelity: float = SINGLE_QUBIT_GATE_FIDELITY
    #: Fidelity floor: Eq. (4) can go negative for pathological inputs;
    #: the success-rate product treats anything below this as failure.
    minimum_fidelity: float = 1.0e-12

    def __post_init__(self) -> None:
        if not (0.0 < self.single_qubit_fidelity <= 1.0):
            raise NoiseModelError("single-qubit fidelity must lie in (0, 1]")
        if self.minimum_fidelity <= 0:
            raise NoiseModelError("the fidelity floor must be positive")

    def two_qubit_gate_fidelity(
        self,
        gate_time_us: float,
        chain_length: int,
        mean_phonon: float,
        accumulated_transport_us: float = 0.0,
    ) -> float:
        """Fidelity of one two-qubit gate (Eq. 4).

        Parameters
        ----------
        gate_time_us:
            Laser interaction time of the gate itself.
        chain_length:
            Number of ions in the trap when the gate fires.
        mean_phonon:
            Current n̄ of the trap.
        accumulated_transport_us:
            Transport/idle time charged to this trap since its previous
            gate; contributes to the Γ·τ term.
        """
        if gate_time_us < 0 or accumulated_transport_us < 0:
            raise NoiseModelError("durations cannot be negative")
        if mean_phonon < 0:
            raise NoiseModelError("the mean phonon number cannot be negative")
        tau_s = (gate_time_us + accumulated_transport_us) / _US_PER_S
        heating_term = self.heating.background_rate_per_s * tau_s
        amplitude = self.heating.amplitude_factor(max(chain_length, 2))
        transport_term = amplitude * (2.0 * mean_phonon + 1.0)
        fidelity = 1.0 - heating_term - transport_term
        return max(fidelity, self.minimum_fidelity)

    def swap_gate_fidelity(
        self,
        gate_time_us: float,
        chain_length: int,
        mean_phonon: float,
        accumulated_transport_us: float = 0.0,
    ) -> float:
        """Fidelity of a SWAP gate = product of three two-qubit gates."""
        single = self.two_qubit_gate_fidelity(
            gate_time_us, chain_length, mean_phonon, accumulated_transport_us
        )
        return single**SWAP_TWO_QUBIT_GATE_COUNT

    def single_qubit_gate_fidelity_value(self) -> float:
        """Fidelity of one single-qubit gate."""
        return self.single_qubit_fidelity


class SuccessRateAccumulator:
    """Accumulates a product of gate fidelities in log space."""

    def __init__(self) -> None:
        self._log_sum = 0.0
        self._gate_count = 0
        self._failed = False

    def multiply(self, fidelity: float) -> None:
        """Fold one gate fidelity into the running product."""
        if fidelity <= 0.0:
            self._failed = True
            return
        if fidelity > 1.0:
            raise NoiseModelError(f"fidelity {fidelity} exceeds 1")
        self._log_sum += math.log(fidelity)
        self._gate_count += 1

    @property
    def gate_count(self) -> int:
        """Number of fidelities folded in so far."""
        return self._gate_count

    @property
    def log_success_rate(self) -> float:
        """Natural log of the running success rate (``-inf`` once failed)."""
        return float("-inf") if self._failed else self._log_sum

    @property
    def success_rate(self) -> float:
        """The running success-rate product."""
        if self._failed:
            return 0.0
        return math.exp(self._log_sum)
