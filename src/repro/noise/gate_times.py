"""Two-qubit gate duration models (paper §4.1, "Execution Time").

Four laser-modulation schemes are modelled, with durations in
microseconds:

* **FM** (frequency modulation): ``τ = max(13.33·N − 54, 100)`` where
  ``N`` is the total number of ions in the chain;
* **PM** (phase modulation): ``τ = 5·d + 160`` where ``d`` is the number
  of ions *between* the two entangled ions;
* **AM1** (amplitude modulation, Wu et al.): ``τ = 100·d − 22``;
* **AM2** (amplitude modulation, Trout et al.): ``τ = 38·d + 10``.

Single-qubit gates take a fixed short duration (they are not the paper's
focus; the constant below keeps them negligible, as in the paper).
"""

from __future__ import annotations

from enum import Enum

from repro.exceptions import NoiseModelError

#: Duration of a single-qubit gate in microseconds.
SINGLE_QUBIT_GATE_TIME_US = 5.0

#: Duration floor for the FM gate in microseconds.
_FM_FLOOR_US = 100.0


class GateImplementation(str, Enum):
    """The two-qubit gate implementation families compared in Fig. 13."""

    FM = "fm"
    PM = "pm"
    AM1 = "am1"
    AM2 = "am2"

    @classmethod
    def from_name(cls, name: "str | GateImplementation") -> "GateImplementation":
        """Accept an enum member or its (case-insensitive) string name."""
        if isinstance(name, cls):
            return name
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise NoiseModelError(f"unknown gate implementation {name!r}; expected one of {valid}") from exc


def fm_gate_time(chain_length: int) -> float:
    """FM gate duration in µs for a chain of ``chain_length`` ions."""
    if chain_length < 2:
        raise NoiseModelError("an entangling gate needs at least two ions in the chain")
    return max(13.33 * chain_length - 54.0, _FM_FLOOR_US)


def pm_gate_time(ion_separation: int) -> float:
    """PM gate duration in µs; ``ion_separation`` = ions between the pair."""
    if ion_separation < 0:
        raise NoiseModelError("ion separation cannot be negative")
    return 5.0 * ion_separation + 160.0


def am1_gate_time(ion_separation: int) -> float:
    """AM1 gate duration in µs (Wu et al. 2018 amplitude modulation)."""
    if ion_separation < 0:
        raise NoiseModelError("ion separation cannot be negative")
    return max(100.0 * ion_separation - 22.0, 10.0)


def am2_gate_time(ion_separation: int) -> float:
    """AM2 gate duration in µs (Trout et al. 2018 amplitude modulation)."""
    if ion_separation < 0:
        raise NoiseModelError("ion separation cannot be negative")
    return 38.0 * ion_separation + 10.0


def two_qubit_gate_time(
    implementation: GateImplementation | str,
    chain_length: int,
    ion_separation: int,
) -> float:
    """Dispatch to the right duration model.

    Parameters
    ----------
    implementation:
        Which modulation scheme implements the gate.
    chain_length:
        Total number of ions in the trap at execution time (FM input).
    ion_separation:
        Number of ions sitting between the two entangled ions (PM/AM
        input).  Adjacent ions have separation 0.
    """
    impl = GateImplementation.from_name(implementation)
    if impl is GateImplementation.FM:
        return fm_gate_time(chain_length)
    if impl is GateImplementation.PM:
        return pm_gate_time(ion_separation)
    if impl is GateImplementation.AM1:
        return am1_gate_time(ion_separation)
    return am2_gate_time(ion_separation)


def single_qubit_gate_time() -> float:
    """Duration of a single-qubit gate in µs."""
    return SINGLE_QUBIT_GATE_TIME_US
