"""Noise, timing and fidelity models (paper §4.1) plus the schedule evaluator."""

from repro.noise.evaluator import (
    EvaluationResult,
    EvaluatorConfig,
    ScheduleEvaluator,
    evaluate_schedule,
)
from repro.noise.fidelity import (
    SINGLE_QUBIT_GATE_FIDELITY,
    SWAP_TWO_QUBIT_GATE_COUNT,
    FidelityModel,
    SuccessRateAccumulator,
)
from repro.noise.gate_times import (
    GateImplementation,
    am1_gate_time,
    am2_gate_time,
    fm_gate_time,
    pm_gate_time,
    single_qubit_gate_time,
    two_qubit_gate_time,
)
from repro.noise.heating import (
    PAPER_HEATING,
    HeatingParameters,
    ThermalLedger,
    TrapThermalState,
)
from repro.noise.operation_times import PAPER_OPERATION_TIMES, OperationTimes

__all__ = [
    "EvaluationResult",
    "EvaluatorConfig",
    "FidelityModel",
    "GateImplementation",
    "HeatingParameters",
    "OperationTimes",
    "PAPER_HEATING",
    "PAPER_OPERATION_TIMES",
    "SINGLE_QUBIT_GATE_FIDELITY",
    "SWAP_TWO_QUBIT_GATE_COUNT",
    "ScheduleEvaluator",
    "SuccessRateAccumulator",
    "ThermalLedger",
    "TrapThermalState",
    "am1_gate_time",
    "am2_gate_time",
    "evaluate_schedule",
    "fm_gate_time",
    "pm_gate_time",
    "single_qubit_gate_time",
    "two_qubit_gate_time",
]
