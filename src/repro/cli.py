"""Command-line interface for the S-SYNC reproduction.

Eleven subcommands cover the common workflows without writing Python:

``compile``
    Compile a circuit (a named Table-2 benchmark or an OpenQASM 2.0 file)
    onto a device preset with any registered compiler, print the
    shuttle/SWAP/success-rate summary (plus per-pass timings) and
    optionally write the compiled schedule as JSON.

``compare``
    Run S-SYNC and the baseline compilers on the same workload and print
    a comparison table (the Fig. 8–10 view for one workload).

``compilers``
    List every compiler in the registry (canonical names, aliases,
    pipeline passes).

``evaluate``
    Re-evaluate a previously saved schedule JSON under a chosen gate
    implementation.

``batch``
    Run a whole job manifest (JSON/YAML) through the batch-compilation
    runtime — parallel workers, schedule caching — and write the result
    records to a JSON or CSV file.

``serve``
    Run the HTTP compilation service (:mod:`repro.service`): submit
    manifests over ``POST /v1/jobs``, stream results as they compile,
    backed by a multi-slot scheduler over a warm worker pool, the shared
    schedule cache and a durable job journal.

``submit`` / ``results`` / ``jobs``
    The client side of the service: submit a manifest to a running
    service (optionally waiting for its results), stream/collect a job's
    results by id, and list or cancel jobs — the full job life cycle
    without writing Python, over :class:`repro.service.ServiceClient`.
    ``jobs --metrics`` pretty-prints the service's ``/v1/metrics``
    exposition as a table (see ``docs/observability.md``).

``loadgen``
    Drive a running service with a seeded synthetic workload
    (:mod:`repro.loadgen`: ``burst``, ``duplicates``, ``priorities``
    or ``results``)
    and print latency percentiles and throughput.

``fuzz``
    Differential scenario fuzzing (:mod:`repro.fuzz`): seeded random
    circuits x random devices through all three scheduler backends and
    the baselines, with backend parity, legality replay, codec
    round-trips and noise invariants checked on every case; failing
    scenarios are delta-debugged to minimal JSON reproducers and the
    regression corpus under ``tests/fuzz/corpus`` can be replayed first.

Examples::

    python -m repro compile qft_24 --device G-2x3 --mapping gathering
    python -m repro compile bv_64 --device G-2x3 --compiler dai
    python -m repro compile my_circuit.qasm --device L-6 --output schedule.json
    python -m repro compare bv_64 --device G-2x3 --output records.csv
    python -m repro compilers
    python -m repro evaluate schedule.json --gate-implementation am2
    python -m repro batch manifest.json --workers 4 --cache-dir .repro-cache \
        --output results.json
    python -m repro serve --port 8000 --workers 4 --slots 2 --cache-dir .repro-cache
    python -m repro submit manifest.json --url http://127.0.0.1:8000 --wait
    python -m repro results 4c58ad19e38009ca --url http://127.0.0.1:8000
    python -m repro jobs --url http://127.0.0.1:8000
    python -m repro jobs --cancel 4c58ad19e38009ca --url http://127.0.0.1:8000
    python -m repro jobs --metrics --url http://127.0.0.1:8000
    python -m repro loadgen --profile burst --requests 20 --url http://127.0.0.1:8000
    python -m repro fuzz --cases 200 --seed 0 --corpus tests/fuzz/corpus
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.metrics import compare_compilers
from repro.analysis.reporting import format_table, write_records
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.library import build_benchmark
from repro.circuit.qasm import qasm_to_circuit
from repro.core.compiler import SSyncConfig
from repro.core.scheduler import SCHEDULER_BACKENDS, SchedulerConfig
from repro.exceptions import ReproError
from repro.hardware.presets import paper_device, preset_names
from repro.noise.evaluator import evaluate_schedule
from repro.registry import available_compilers, compiler_spec, make_pipeline
from repro.runtime.api import run_batch
from repro.runtime.cache import ScheduleCache
from repro.runtime.manifest import load_manifest
from repro.schedule.serialize import schedule_from_json, schedule_to_json


def _load_circuit(spec: str) -> QuantumCircuit:
    """Resolve a circuit argument: a ``.qasm`` file path or a benchmark name.

    Only a ``.qasm`` suffix selects QASM parsing — an arbitrary existing
    file is never fed to the parser on the strength of its path alone.
    """
    path = Path(spec)
    if path.suffix.lower() == ".qasm":
        if not path.exists():
            raise ReproError(f"QASM file {spec!r} does not exist")
        return qasm_to_circuit(path.read_text(), name=path.stem)
    try:
        return build_benchmark(spec)
    except ReproError as exc:
        if path.exists():
            raise ReproError(
                f"cannot interpret {spec!r}: it is not a benchmark name ({exc}), "
                "and only files with a .qasm suffix are parsed as OpenQASM"
            ) from exc
        raise


def _load_device(name: str, capacity: int | None):
    return paper_device(name, capacity)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="S-SYNC: shuttle and swap co-optimization for QCCD devices",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "circuit",
            help="benchmark name (e.g. qft_24, adder_32, bv_64) or path to an OpenQASM 2.0 file",
        )
        p.add_argument(
            "--device",
            default="G-2x3",
            help=f"device preset ({', '.join(preset_names())}) or structural name like G-4x4",
        )
        p.add_argument("--capacity", type=int, default=None, help="override the per-trap capacity")
        p.add_argument(
            "--gate-implementation",
            default="fm",
            choices=("fm", "pm", "am1", "am2"),
            help="two-qubit gate timing model used for evaluation",
        )

    compile_parser = sub.add_parser("compile", help="compile one circuit with any registered compiler")
    add_common(compile_parser)
    compile_parser.add_argument(
        "--compiler",
        default="s-sync",
        help="registered compiler name or alias (see 'repro compilers')",
    )
    compile_parser.add_argument(
        "--mapping",
        default=None,
        choices=("gathering", "even-divided", "sta"),
        help="first-level initial mapping strategy (S-SYNC only; default: gathering)",
    )
    compile_parser.add_argument(
        "--lookahead",
        type=int,
        default=None,
        help="heuristic lookahead depth (S-SYNC only; 0 = paper-faithful, default: 4)",
    )
    compile_parser.add_argument(
        "--backend",
        default=None,
        choices=SCHEDULER_BACKENDS,
        help="scheduler core (S-SYNC only; default: flat — all three are bit-identical)",
    )
    compile_parser.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="FILE",
        help="dump a cProfile pstats file of the routing pass only",
    )
    compile_parser.add_argument(
        "--profile-full",
        type=Path,
        default=None,
        metavar="FILE",
        help="dump a cProfile pstats file of the whole pipeline: mapping, "
        "routing, verification, evaluation and schedule serialization",
    )
    compile_parser.add_argument(
        "--output", type=Path, default=None, help="write the compiled schedule to this JSON file"
    )
    compile_parser.add_argument(
        "--skip-verify", action="store_true", help="skip the schedule legality check"
    )

    compare_parser = sub.add_parser("compare", help="compare S-SYNC against the baseline compilers")
    add_common(compare_parser)
    compare_parser.add_argument(
        "--output", type=Path, default=None, help="also write the records to this JSON/CSV file"
    )
    compare_parser.add_argument(
        "--format",
        dest="output_format",
        default=None,
        choices=("json", "csv"),
        help="output file format (default: inferred from the --output suffix)",
    )

    batch_parser = sub.add_parser(
        "batch", help="run a job manifest through the batch-compilation runtime"
    )
    batch_parser.add_argument("manifest", type=Path, help="path to a JSON/YAML job manifest")
    batch_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for distinct compilations (0 = one per CPU)",
    )
    batch_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk schedule cache (reused across runs)",
    )
    batch_parser.add_argument(
        "--output", type=Path, default=None, help="write the result records to this JSON/CSV file"
    )
    batch_parser.add_argument(
        "--format",
        dest="output_format",
        default=None,
        choices=("json", "csv"),
        help="output file format (default: inferred from the --output suffix)",
    )

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP compilation service over the batch runtime"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve_parser.add_argument("--port", type=int, default=8000, help="TCP port (0 = ephemeral)")
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="warm worker processes for compilations (0 = one per CPU)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk schedule cache (survives restarts)",
    )
    serve_parser.add_argument(
        "--max-cache-entries",
        type=int,
        default=256,
        help="capacity of the in-memory schedule-cache tier",
    )
    serve_parser.add_argument(
        "--slots",
        type=int,
        default=2,
        help="how many submitted batches may run concurrently (1 = serial)",
    )
    serve_parser.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let running jobs finish on shutdown before cancelling",
    )
    serve_parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable job journal (jobs then live in memory only)",
    )
    serve_parser.add_argument(
        "--no-compact",
        action="store_true",
        help="keep the full journal event log instead of compacting it after replay",
    )
    serve_parser.add_argument(
        "--journal-max-bytes",
        type=int,
        default=None,
        help="rotate (compact in place) the job journal when it exceeds this size",
    )
    serve_parser.add_argument(
        "--cache-tier",
        default=None,
        metavar="URL",
        help="base URL of a shared network cache tier (GET/PUT /v1/cache); "
        "misses fall back to the local cache when the tier is down",
    )
    serve_parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="run N sharded worker processes behind a router on --port "
        "(0 = single-process service; workers tier their caches onto the router)",
    )

    def add_client_url(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default="http://127.0.0.1:8000",
            help="base URL of a running repro service (default: %(default)s)",
        )
        p.add_argument(
            "--timeout",
            type=float,
            default=300.0,
            help="client-side HTTP timeout in seconds",
        )

    submit_parser = sub.add_parser(
        "submit", help="submit a job manifest to a running compilation service"
    )
    submit_parser.add_argument("manifest", type=Path, help="path to a JSON job manifest")
    add_client_url(submit_parser)
    submit_parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="scheduler priority (larger runs earlier; default 0)",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="stream the results and print the record table before returning",
    )
    submit_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the streamed records to this JSON/CSV file (implies --wait)",
    )
    submit_parser.add_argument(
        "--format",
        dest="output_format",
        default=None,
        choices=("json", "csv"),
        help="output file format (default: inferred from the --output suffix)",
    )

    results_parser = sub.add_parser(
        "results", help="stream a submitted job's results from a running service"
    )
    results_parser.add_argument("job_id", help="fingerprint-derived job id")
    add_client_url(results_parser)
    results_parser.add_argument(
        "--raw",
        action="store_true",
        help="print the JSON result lines as received instead of a table",
    )
    results_parser.add_argument(
        "--output", type=Path, default=None, help="write the records to this JSON/CSV file"
    )
    results_parser.add_argument(
        "--format",
        dest="output_format",
        default=None,
        choices=("json", "csv"),
        help="output file format (default: inferred from the --output suffix)",
    )

    jobs_parser = sub.add_parser(
        "jobs", help="list (or cancel) jobs on a running compilation service"
    )
    add_client_url(jobs_parser)
    jobs_parser.add_argument("--offset", type=int, default=0, help="listing page offset")
    jobs_parser.add_argument(
        "--limit", type=int, default=None, help="listing page size (default: everything)"
    )
    jobs_parser.add_argument(
        "--cancel",
        metavar="JOB_ID",
        default=None,
        help="cancel this job instead of listing",
    )
    jobs_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the service's /v1/metrics exposition as a table instead of listing jobs",
    )
    jobs_parser.add_argument(
        "--raw",
        action="store_true",
        help="with --metrics: print the Prometheus text exposition verbatim",
    )

    loadgen_parser = sub.add_parser(
        "loadgen", help="drive a running service with a synthetic workload profile"
    )
    add_client_url(loadgen_parser)
    loadgen_parser.add_argument(
        "--profile",
        default="burst",
        choices=("burst", "duplicates", "priorities", "results"),
        help="workload shape (see repro.loadgen; default: %(default)s)",
    )
    loadgen_parser.add_argument(
        "--requests", type=int, default=20, help="how many submissions to make"
    )
    loadgen_parser.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="client threads submitting and streaming concurrently",
    )
    loadgen_parser.add_argument(
        "--seed", type=int, default=0, help="request-plan seed (plans are deterministic)"
    )
    loadgen_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the aggregated result as JSON to this file",
    )

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random scenarios through every scheduler backend",
    )
    fuzz_parser.add_argument(
        "--cases", type=int, default=100, help="scenarios to generate (default: %(default)s)"
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="master seed of the scenario stream"
    )
    fuzz_parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop generating new scenarios after this much wall time",
    )
    fuzz_parser.add_argument(
        "--corpus",
        type=Path,
        default=None,
        metavar="DIR",
        help="regression corpus directory to replay before generating "
        "(the checked-in corpus lives in tests/fuzz/corpus)",
    )
    fuzz_parser.add_argument(
        "--minimize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="shrink failing scenarios to 1-minimal reproducers (default: on)",
    )
    fuzz_parser.add_argument(
        "--failures",
        type=Path,
        default=Path("fuzz-failures"),
        metavar="DIR",
        help="directory minimized reproducer JSON files are written to "
        "(only created when a scenario fails; default: %(default)s)",
    )
    fuzz_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-case progress output"
    )

    sub.add_parser("compilers", help="list the registered compilers and their pipelines")

    evaluate_parser = sub.add_parser("evaluate", help="re-evaluate a saved schedule JSON")
    evaluate_parser.add_argument("schedule", type=Path, help="path to a schedule JSON file")
    evaluate_parser.add_argument(
        "--gate-implementation",
        default="fm",
        choices=("fm", "pm", "am1", "am2"),
        help="two-qubit gate timing model used for evaluation",
    )
    return parser


def _profiled_pass_run(profiler, run):
    """Wrap one pass's ``run`` so it executes under ``profiler``."""

    def profiled(context):
        profiler.enable()
        try:
            run(context)
        finally:
            profiler.disable()

    return profiled


def _command_compile(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    device = _load_device(args.device, args.capacity)
    spec = compiler_spec(args.compiler)
    if args.mapping is not None and not spec.accepts_mapping:
        raise ReproError(
            f"compiler {spec.name!r} brings its own initial mapping; --mapping only "
            "applies to compilers with pluggable mappings (e.g. s-sync)"
        )
    if args.lookahead is not None and not spec.accepts_config:
        raise ReproError(
            f"compiler {spec.name!r} takes no scheduler configuration; --lookahead "
            "only applies to compilers that accept one (e.g. s-sync)"
        )
    if args.backend is not None and not spec.accepts_config:
        raise ReproError(
            f"compiler {spec.name!r} takes no scheduler configuration; --backend "
            "only applies to compilers that accept one (e.g. s-sync)"
        )
    lookahead = args.lookahead if args.lookahead is not None else 4
    config = SSyncConfig(
        scheduler=SchedulerConfig(lookahead_depth=lookahead, backend=args.backend)
    )
    pipeline = make_pipeline(spec.name, device, config=config, verify=not args.skip_verify)
    profiler = None
    if args.profile is not None:
        # Profile the routing pass only: shadow its bound ``run`` with a
        # wrapper that switches the profiler on just for that stage, so
        # the dump isolates the scheduler hot path from mapping/verify.
        import cProfile

        profiler = cProfile.Profile()
        for stage in pipeline.passes:
            if stage.name == "routing":
                stage.run = _profiled_pass_run(profiler, stage.run)  # type: ignore[method-assign]
    full_profiler = None
    if args.profile_full is not None:
        # Profile everything the artifact path pays for: every pipeline
        # pass (mapping, routing, verification), the noise evaluation and
        # the binary schedule serialization — complementing --profile,
        # which isolates routing.
        import cProfile

        full_profiler = cProfile.Profile()
        full_profiler.enable()
    result = pipeline.compile(
        circuit, initial_mapping=args.mapping if spec.accepts_mapping else None
    )
    if profiler is not None:
        profiler.dump_stats(args.profile)
        print(f"routing-pass profile written to {args.profile}")
    evaluation = evaluate_schedule(result.schedule, gate_implementation=args.gate_implementation)
    if full_profiler is not None:
        from repro.schedule.serialize import schedule_to_bytes

        schedule_to_bytes(result.schedule)
        full_profiler.disable()
        full_profiler.dump_stats(args.profile_full)
        print(f"full-pipeline profile written to {args.profile_full}")
    rows = [
        {
            "circuit": circuit.name,
            "device": device.name,
            "mapping": result.mapping_name or "-",
            "2q_gates": result.two_qubit_gate_count,
            "shuttles": result.shuttle_count,
            "swaps": result.swap_count,
            "success_rate": evaluation.success_rate,
            "exec_time_ms": evaluation.execution_time_us / 1e3,
            "compile_time_s": result.compile_time_s,
        }
    ]
    print(format_table(rows, title=f"{spec.name.upper()} compilation summary"))
    print(
        "passes: "
        + "  ".join(f"{t.name}={t.wall_time_s:.4f}s" for t in result.pass_timings)
    )
    if args.output is not None:
        args.output.write_text(schedule_to_json(result.schedule, indent=2))
        print(f"schedule written to {args.output}")
    return 0


def _command_compilers(args: argparse.Namespace) -> int:
    device = paper_device("G-2x2")  # a representative device to materialise pipelines
    rows = []
    for spec in available_compilers():
        pipeline = make_pipeline(spec.name, device)
        rows.append(
            {
                "name": spec.name,
                "aliases": ", ".join(spec.aliases) or "-",
                "passes": " -> ".join(pipeline.pass_names()),
                "mapping": spec.default_mapping or "built-in",
                "description": spec.description,
            }
        )
    print(format_table(rows, title="registered compilers"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    device = _load_device(args.device, args.capacity)
    records = compare_compilers(
        circuit, device, gate_implementation=args.gate_implementation
    )
    rows = [r.as_dict() for r in records]
    print(
        format_table(
            rows,
            columns=[
                "compiler",
                "shuttles",
                "swaps",
                "success_rate",
                "execution_time_us",
                "compile_time_s",
            ],
            title=f"{circuit.name} on {device.name} ({args.gate_implementation.upper()} gates)",
        )
    )
    if args.output is not None:
        written = write_records(records, args.output, fmt=args.output_format)
        print(f"records written to {written}")
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    jobs = load_manifest(args.manifest)
    cache = (
        ScheduleCache(directory=args.cache_dir) if args.cache_dir is not None else None
    )
    workers = None if args.workers == 0 else args.workers
    result = run_batch(jobs, workers=workers, cache=cache)
    print(
        format_table(
            result.as_dicts(),
            columns=[
                "circuit",
                "device",
                "compiler",
                "mapping",
                "gate_implementation",
                "shuttles",
                "swaps",
                "success_rate",
                "execution_time_us",
                "compile_time_s",
                "from_cache",
            ],
            title=f"batch results ({args.manifest})",
        )
    )
    summary = result.summary()
    print(
        "jobs={jobs} compilations={compilations} cache_hits={cache_hits} "
        "workers={workers} wall_time_s={wall:.3f}".format(
            jobs=summary["jobs"],
            compilations=summary["compilations"],
            cache_hits=summary["cache_hits"],
            workers=summary["workers"],
            wall=summary["wall_time_s"],
        )
    )
    if args.output is not None:
        written = write_records(result.as_dicts(), args.output, fmt=args.output_format)
        print(f"records written to {written}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here so the offline subcommands never pay for (or depend
    # on) the service stack.
    workers = None if args.workers == 0 else args.workers
    service_kwargs = dict(
        workers=workers,
        max_cache_entries=args.max_cache_entries,
        slots=args.slots,
        journal=not args.no_journal,
        journal_max_bytes=args.journal_max_bytes,
        compact=not args.no_compact,
        drain_timeout=args.drain_timeout,
    )
    if args.fleet:
        from repro.service.fleet import make_fleet

        server = make_fleet(
            host=args.host,
            port=args.port,
            size=args.fleet,
            cache_dir=args.cache_dir,
            **service_kwargs,
        )
        print(
            f"repro fleet listening on {server.url} "
            f"({args.fleet} workers, shared cache tier on the router)"
        )
        print("endpoints: POST/GET /v1/jobs  GET|DELETE /v1/jobs/<id>  "
              "GET /v1/jobs/<id>/results  GET|PUT /v1/cache/<fp>  "
              "GET /v1/fleet  GET /v1/healthz  GET /v1/metrics")

        # Fleet workers are non-daemon processes; translate SIGTERM into
        # the KeyboardInterrupt path so they are torn down with the
        # router instead of outliving it.
        import signal

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        previous = signal.signal(signal.SIGTERM, _terminate)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            signal.signal(signal.SIGTERM, previous)
            server.shutdown()
            server.server_close()
            server.close()
        return 0

    from repro.service.server import make_server

    server = make_server(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        cache_tier=args.cache_tier,
        **service_kwargs,
    )
    print(f"repro service listening on {server.url}")
    print("endpoints: POST/GET /v1/jobs  GET|DELETE /v1/jobs/<id>  "
          "GET /v1/jobs/<id>/results  GET /v1/schedules/<fp>  "
          "GET|PUT /v1/cache/<fp>  "
          "GET /v1/compilers  GET /v1/healthz  GET /v1/metrics")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
        server.server_close()
        server.service.close()
    return 0


def _service_client(args: argparse.Namespace):
    # Deferred import for the same reason as _command_serve.
    from repro.service.client import ServiceClient

    return ServiceClient(args.url, timeout=args.timeout)


_RESULT_COLUMNS = [
    "circuit",
    "device",
    "compiler",
    "mapping",
    "gate_implementation",
    "shuttles",
    "swaps",
    "success_rate",
    "execution_time_us",
    "compile_time_s",
    "from_cache",
]


def _print_streamed_results(client, job_id: str, args: argparse.Namespace) -> int:
    """Stream one job's result lines and render them (shared by
    ``repro results`` and ``repro submit --wait``)."""
    raw = getattr(args, "raw", False)
    rows: list[dict[str, object]] = []
    end: dict[str, object] = {}
    for line in client.stream_results(job_id):
        if raw:
            print(json.dumps(line, sort_keys=True))
        if line.get("type") == "outcome":
            row = dict(line["record"])
            row["compile_time_s"] = line["compile_time_s"]
            row["from_cache"] = line["from_cache"]
            rows.append(row)
        elif line.get("type") == "end":
            end = line
    if not raw:
        if rows:
            print(format_table(rows, columns=_RESULT_COLUMNS, title=f"job {job_id}"))
        status = end.get("status", "unknown")
        summary = end.get("summary")
        if isinstance(summary, dict):
            print(
                "status={status} jobs={jobs} compilations={compilations} "
                "cache_hits={cache_hits} wall_time_s={wall:.3f}".format(
                    status=status,
                    jobs=summary.get("jobs"),
                    compilations=summary.get("compilations"),
                    cache_hits=summary.get("cache_hits"),
                    wall=float(summary.get("wall_time_s", 0.0)),
                )
            )
        else:
            print(f"status={status}")
        error = end.get("error")
        if isinstance(error, dict):
            print(f"error: {error.get('type')}: {error.get('message')}", file=sys.stderr)
    output = getattr(args, "output", None)
    if output is not None:
        written = write_records(rows, output, fmt=args.output_format)
        print(f"records written to {written}")
    return 0 if end.get("status") == "done" else 1


def _command_submit(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if not args.manifest.exists():
        raise ReproError(f"manifest file {args.manifest} does not exist")
    receipt = client.submit_file(args.manifest, priority=args.priority)
    print(
        "job_id={job_id} status={status} jobs={jobs} resubmitted={resubmitted}".format(
            **{key: receipt.get(key) for key in ("job_id", "status", "jobs", "resubmitted")}
        )
    )
    if args.wait or args.output is not None:  # --output implies waiting
        return _print_streamed_results(client, receipt["job_id"], args)
    print(f"results: {args.url}{receipt.get('results_path', '')}")
    return 0


def _command_results(args: argparse.Namespace) -> int:
    client = _service_client(args)
    return _print_streamed_results(client, args.job_id, args)


def _print_metrics(client, raw: bool) -> int:
    """Render ``/v1/metrics`` as a table (or verbatim with ``raw``)."""
    text = client.metrics()
    if raw:
        print(text, end="")
        return 0
    from repro.obs import parse_exposition

    rows = []
    for name, metric in sorted(parse_exposition(text).items()):
        for sample in metric.samples:
            labels = ",".join(
                f"{key}={value}" for key, value in sample.labels_dict().items()
            )
            rows.append(
                {
                    "metric": sample.name,
                    "labels": labels or "-",
                    "kind": metric.kind,
                    "value": sample.value,
                }
            )
    print(format_table(rows, title="service metrics"))
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.metrics:
        return _print_metrics(client, raw=args.raw)
    if args.cancel is not None:
        payload = client.cancel(args.cancel)
        print(
            "job_id={job_id} status={status} cancel_requested={cancel_requested}".format(
                **payload
            )
        )
        return 0
    page = client.jobs_page(offset=args.offset, limit=args.limit)
    rows = [
        {
            "job_id": job["job_id"],
            "status": job["status"],
            "priority": job.get("priority", 0),
            "jobs": job["jobs"],
            "completed": job["completed"],
            "created_at": job["created_at"],
        }
        for job in page["jobs"]
    ]
    if rows:
        print(format_table(rows, title="service jobs"))
    print(
        "total={total} offset={offset} count={count}".format(
            total=page["total"], offset=page["offset"], count=page["count"]
        )
    )
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    # Deferred import like the other service commands.
    from repro.loadgen import run_profile

    result = run_profile(
        args.url,
        args.profile,
        requests=args.requests,
        seed=args.seed,
        concurrency=args.concurrency,
        timeout=args.timeout,
    )
    summary = result.as_dict()
    latency = summary["latency_s"]
    print(
        format_table(
            [
                {
                    "profile": summary["profile"],
                    "requests": summary["requests"],
                    "throughput_rps": summary["throughput_rps"],
                    "p50_s": latency["p50"],
                    "p95_s": latency["p95"],
                    "p99_s": latency["p99"],
                    "max_s": latency["max"],
                    "wall_s": summary["wall_s"],
                }
            ],
            title=f"loadgen {summary['profile']} (seed {summary['seed']})",
        )
    )
    print(
        "statuses="
        + " ".join(f"{k}:{v}" for k, v in sorted(summary["statuses"].items()))
        + f" resubmitted={summary['resubmitted']}"
    )
    if args.output is not None:
        args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"result written to {args.output}")
    return 0 if result.ok else 1


def _command_fuzz(args: argparse.Namespace) -> int:
    # Deferred import: the fuzz subsystem pulls in every compiler.
    from repro.fuzz import run_fuzz

    result = run_fuzz(
        cases=args.cases,
        seed=args.seed,
        time_budget_s=args.time_budget,
        corpus_dir=args.corpus,
        minimize=args.minimize,
        failures_dir=args.failures,
        on_progress=None if args.quiet else print,
    )
    print(result.summary())
    for failure in result.failures:
        print(f"  {failure.source}: [{failure.check}] {failure.detail}")
        if failure.reproducer_path is not None:
            print(f"    reproducer: {failure.reproducer_path}")
    return 0 if result.ok else 1


def _command_evaluate(args: argparse.Namespace) -> int:
    schedule = schedule_from_json(args.schedule.read_text())
    evaluation = evaluate_schedule(schedule, gate_implementation=args.gate_implementation)
    rows = [
        {
            "circuit": schedule.circuit_name,
            "device": schedule.device.name,
            "gate_implementation": args.gate_implementation,
            "2q_gates": schedule.two_qubit_gate_count,
            "shuttles": schedule.shuttle_count,
            "swaps": schedule.swap_count,
            "success_rate": evaluation.success_rate,
            "exec_time_ms": evaluation.execution_time_us / 1e3,
        }
    ]
    print(format_table(rows, title="schedule evaluation"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compile": _command_compile,
        "compare": _command_compare,
        "compilers": _command_compilers,
        "evaluate": _command_evaluate,
        "batch": _command_batch,
        "serve": _command_serve,
        "submit": _command_submit,
        "results": _command_results,
        "jobs": _command_jobs,
        "loadgen": _command_loadgen,
        "fuzz": _command_fuzz,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
