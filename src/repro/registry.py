"""The single compiler registry: one name resolution for every entry point.

Before this module existed, compiler-name dispatch was duplicated — the
batch runtime, the comparison metrics and the CLI each kept their own
alias table.  Now a compiler name means the same thing everywhere: the
registry maps canonical names and their aliases (``"s-sync"``/``"ssync"``/
``"this work"``, ``"murali"``, ``"dai"``) to *pipeline factories*, and
:func:`make_pipeline` hands back a ready
:class:`~repro.pipeline.CompilerPipeline` for a device.

Third-party backends plug in through :func:`register_compiler`::

    from repro.pipeline import CompilerPipeline, MetricsPass
    from repro.registry import register_compiler

    def my_factory(device, config=None):
        return CompilerPipeline("my-router", device, [MyMappingPass(), MyRoutingPass(), MetricsPass()])

    register_compiler("my-router", my_factory, aliases=("mine",),
                      description="my custom QCCD router")

After registration the new name works in :class:`CompileJob` specs, batch
manifests, sweeps, ``compare_compilers`` and the ``repro`` CLI exactly
like the built-in compilers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.pipeline import CompilerPipeline

#: A pipeline factory: ``factory(device, config=None) -> CompilerPipeline``.
PipelineFactory = Callable[..., CompilerPipeline]


@dataclass(frozen=True)
class CompilerSpec:
    """One registered compiler: canonical name, aliases and its factory.

    Attributes
    ----------
    name:
        Canonical lower-case name used in records and fingerprints.
    factory:
        ``factory(device, config=None)`` returning a
        :class:`~repro.pipeline.CompilerPipeline` for that device.
    aliases:
        Additional accepted spellings (lower-cased on registration).
    description:
        One-line human-readable summary for CLI listings.
    accepts_mapping:
        Whether the compiler takes a first-level ``initial_mapping``
        argument (S-SYNC does; the greedy baselines bring their own
        fixed mapping).
    accepts_config:
        Whether the compiler consumes an
        :class:`~repro.core.compiler.SSyncConfig` (controls whether the
        config participates in job fingerprints).
    builtin:
        True for the compilers this package registers at import time.
        Built-ins exist in every freshly spawned interpreter; runtime
        registrations do not, which the batch pool accounts for on
        platforms without ``fork``.
    """

    name: str
    factory: PipelineFactory
    aliases: tuple[str, ...] = ()
    description: str = ""
    accepts_mapping: bool = False
    accepts_config: bool = False
    default_mapping: str = ""
    builtin: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    def all_names(self) -> tuple[str, ...]:
        """Canonical name followed by every alias."""
        return (self.name, *self.aliases)


_REGISTRY: dict[str, CompilerSpec] = {}
_ALIASES: dict[str, str] = {}


def register_compiler(
    name: str,
    factory: PipelineFactory,
    aliases: tuple[str, ...] | list[str] = (),
    description: str = "",
    accepts_mapping: bool = False,
    accepts_config: bool = False,
    default_mapping: str = "",
    overwrite: bool = False,
    _builtin: bool = False,
) -> CompilerSpec:
    """Register a compiler backend under ``name`` (plus ``aliases``).

    Names and aliases are case-insensitive.  Registering a name or alias
    that is already taken raises :class:`ReproError` unless
    ``overwrite=True`` re-registers the canonical name (aliases may not
    collide across compilers even then).  Returns the stored spec.
    """
    canonical = name.lower().strip()
    if not canonical:
        raise ReproError("a compiler name cannot be empty")
    spec = CompilerSpec(
        name=canonical,
        factory=factory,
        aliases=tuple(sorted({a.lower().strip() for a in aliases} - {canonical})),
        description=description,
        accepts_mapping=accepts_mapping,
        accepts_config=accepts_config,
        default_mapping=default_mapping,
        builtin=_builtin,
    )
    if canonical in _REGISTRY and not overwrite:
        raise ReproError(
            f"a compiler named {canonical!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    if canonical in _ALIASES and _ALIASES[canonical] != canonical:
        raise ReproError(
            f"{canonical!r} is already an alias of compiler {_ALIASES[canonical]!r}"
        )
    for alias in spec.aliases:
        owner = _ALIASES.get(alias)
        if owner is not None and owner != canonical:
            raise ReproError(f"alias {alias!r} is already taken by compiler {owner!r}")
        if alias in _REGISTRY:
            raise ReproError(f"alias {alias!r} collides with a registered compiler name")
    if canonical in _REGISTRY and overwrite:
        _unlink_aliases(canonical)
    _REGISTRY[canonical] = spec
    _ALIASES[canonical] = canonical
    for alias in spec.aliases:
        _ALIASES[alias] = canonical
    return spec


def unregister_compiler(name: str) -> None:
    """Remove a registered compiler and its aliases (for tests/plugins)."""
    canonical = _ALIASES.get(name.lower().strip())
    if canonical is None or canonical not in _REGISTRY:
        raise ReproError(f"unknown compiler {name!r}")
    _unlink_aliases(canonical)
    del _REGISTRY[canonical]


def _unlink_aliases(canonical: str) -> None:
    for alias in list(_ALIASES):
        if _ALIASES[alias] == canonical:
            del _ALIASES[alias]


def normalize_compiler_name(name: str) -> str:
    """Map a compiler name or alias onto its canonical registered name.

    This is the one name-resolution used by jobs, manifests, sweeps,
    metrics and the CLI.  Raises :class:`ReproError` for unknown names,
    listing what is available.
    """
    canonical = _ALIASES.get(name.lower().strip())
    if canonical is None:
        raise ReproError(
            f"unknown compiler {name!r} (registered: {', '.join(registered_names())})"
        )
    return canonical


def compiler_spec(name: str) -> CompilerSpec:
    """The :class:`CompilerSpec` for a name or alias."""
    return _REGISTRY[normalize_compiler_name(name)]


def registered_names() -> tuple[str, ...]:
    """All canonical compiler names, sorted."""
    return tuple(sorted(_REGISTRY))


def available_compilers() -> tuple[CompilerSpec, ...]:
    """All registered compiler specs, sorted by canonical name."""
    return tuple(_REGISTRY[name] for name in registered_names())


def make_pipeline(
    name: str,
    device: QCCDDevice,
    config: Any = None,
    verify: bool = False,
) -> CompilerPipeline:
    """Build the pipeline for compiler ``name`` on ``device``.

    ``config`` is forwarded to the factory only when the compiler accepts
    one; ``verify=True`` inserts a
    :class:`~repro.pipeline.VerifySchedulePass` before the metrics stage.
    """
    spec = compiler_spec(name)
    pipeline = spec.factory(device, config=config) if spec.accepts_config else spec.factory(device)
    if verify:
        pipeline = pipeline.with_verification()
    return pipeline


# ----------------------------------------------------------------------
# built-in compilers
# ----------------------------------------------------------------------
def _register_builtin_compilers() -> None:
    """Register S-SYNC and the paper's baselines (idempotent)."""
    from repro.baselines.dai import DaiCompiler
    from repro.baselines.murali import MuraliCompiler
    from repro.core.compiler import SSyncCompiler, SSyncConfig

    if "s-sync" in _REGISTRY:
        return

    def ssync_factory(device: QCCDDevice, config: "SSyncConfig | None" = None) -> CompilerPipeline:
        return SSyncCompiler(device, config).pipeline()

    def murali_factory(device: QCCDDevice) -> CompilerPipeline:
        return MuraliCompiler(device).pipeline()

    def dai_factory(device: QCCDDevice) -> CompilerPipeline:
        return DaiCompiler(device).pipeline()

    register_compiler(
        "s-sync",
        ssync_factory,
        aliases=("ssync", "this work"),
        description="shuttle/SWAP co-optimizing compiler (this paper)",
        accepts_mapping=True,
        accepts_config=True,
        default_mapping="gathering",
        _builtin=True,
    )
    register_compiler(
        "murali",
        murali_factory,
        description="greedy first-use mapping + step-wise SWAP routing (ISCA'20)",
        _builtin=True,
    )
    register_compiler(
        "dai",
        dai_factory,
        description="lookahead greedy router with interaction-aware mapping (TQE'24)",
        _builtin=True,
    )


_register_builtin_compilers()
