"""Baseline QCCD compilers the paper compares against (reimplementations)."""

from repro.baselines.base import BaselineRouter
from repro.baselines.dai import DaiCompiler
from repro.baselines.murali import MuraliCompiler

#: Registry of baseline compilers by name.
BASELINE_REGISTRY: dict[str, type[BaselineRouter]] = {
    MuraliCompiler.name: MuraliCompiler,
    DaiCompiler.name: DaiCompiler,
}

__all__ = ["BASELINE_REGISTRY", "BaselineRouter", "DaiCompiler", "MuraliCompiler"]
