"""Dai-et-al.-style baseline compiler (IEEE TQE 2024, advanced shuttle strategies).

A stronger baseline than :class:`~repro.baselines.murali.MuraliCompiler`:
it still routes gates greedily in program order, but

* the **initial mapping** clusters interacting qubits (interaction-graph
  greedy packing) instead of first-use order,
* when the operands of a gate are separated, it moves the endpoint with
  the **cheaper** move (fewer hops to travel, closer to its chain edge,
  and fewer upcoming partners left behind in its current trap),
* the moving ion reaches the chain edge with a single **long-range SWAP**
  rather than a chain of adjacent SWAPs.

It does not perform S-SYNC's joint shuttle/SWAP cost search, so it
typically lands between Murali et al. and S-SYNC on both metrics —
matching its position in the paper's Figs. 8–10.
"""

from __future__ import annotations

from repro.baselines.base import BaselineRouter
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.core.state import DeviceState
from repro.exceptions import MappingError
from repro.schedule.schedule import Schedule


class DaiCompiler(BaselineRouter):
    """Lookahead greedy router with interaction-aware initial mapping."""

    name = "dai"

    #: One slot per trap is kept free for incoming ions.
    reserved_slots = 1

    # ------------------------------------------------------------------
    # initial mapping: greedy interaction clustering
    # ------------------------------------------------------------------
    def build_initial_state(self, circuit: QuantumCircuit) -> DeviceState:
        interaction = circuit.interaction_graph()
        unassigned = set(range(circuit.num_qubits))
        state = DeviceState(self.device)
        for trap in self.device.traps:
            if not unassigned:
                break
            quota = max(trap.capacity - self.reserved_slots, 1)
            cluster: list[int] = []
            seed = max(
                unassigned,
                key=lambda q: (sum(d["weight"] for _, _, d in interaction.edges(q, data=True)), -q),
            )
            cluster.append(seed)
            unassigned.discard(seed)
            while len(cluster) < quota and unassigned:
                best = max(
                    unassigned,
                    key=lambda q: (
                        sum(
                            interaction[q][m]["weight"]
                            for m in cluster
                            if interaction.has_edge(q, m)
                        ),
                        -q,
                    ),
                )
                best_weight = sum(
                    interaction[best][m]["weight"]
                    for m in cluster
                    if interaction.has_edge(best, m)
                )
                if best_weight <= 0.0:
                    # No remaining qubit interacts with this cluster; start a
                    # fresh cluster in the next trap instead of padding.
                    break
                cluster.append(best)
                unassigned.discard(best)
            for qubit in cluster:
                state.place(qubit, trap.trap_id)
        if unassigned:
            for trap in self.device.traps:
                while unassigned and state.has_space(trap.trap_id):
                    qubit = min(unassigned)
                    state.place(qubit, trap.trap_id)
                    unassigned.discard(qubit)
            if unassigned:
                raise MappingError(
                    f"device {self.device.name} cannot hold {circuit.num_qubits} qubits"
                )
        return state

    # ------------------------------------------------------------------
    # routing: move the cheaper endpoint, long-range SWAP to the edge
    # ------------------------------------------------------------------
    def _move_cost(self, state: DeviceState, qubit: int, partner: int, upcoming: dict[int, list[int]]) -> float:
        """Estimated cost of moving ``qubit`` into ``partner``'s trap."""
        source = state.trap_of(qubit)
        target = state.trap_of(partner)
        departing_end = state.facing_end(source, state.device.next_hop(source, target))
        edge_distance = state.distance_to_end(qubit, departing_end)
        hop_cost = state.device.trap_distance(source, target)
        # Leaving behind qubits it will soon interact with is penalised.
        future = upcoming.get(qubit, [])
        local_partners = sum(
            1 for other in future[:4] if state.is_placed(other) and state.trap_of(other) == source
        )
        congestion = 0.0 if state.has_space(target) else 1.0
        return hop_cost + 0.1 * edge_distance + 0.3 * local_partners + 0.5 * congestion

    def route_gate(
        self, schedule: Schedule, state: DeviceState, gate: Gate, upcoming: dict[int, list[int]]
    ) -> None:
        qubit_a, qubit_b = gate.qubits
        cost_a = self._move_cost(state, qubit_a, qubit_b, upcoming)
        cost_b = self._move_cost(state, qubit_b, qubit_a, upcoming)
        if cost_a <= cost_b:
            mover, anchor = qubit_a, qubit_b
        else:
            mover, anchor = qubit_b, qubit_a
        self.shuttle_along_path(
            schedule,
            state,
            mover,
            state.trap_of(anchor),
            stepwise_swaps=False,
            protected=(anchor,),
            reserve_at_target=1,
        )
