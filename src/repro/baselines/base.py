"""Shared machinery for the baseline QCCD compilers.

The two baselines (Murali et al. ISCA'20 and Dai et al. TQE'24) are
greedy routers that process two-qubit gates in dependency order and move
one operand to the other's trap whenever they are separated.  They share
the routing primitives in :class:`BaselineRouter`:

* ``bring_to_end`` — SWAP an ion to the chain end facing the next trap;
  the *step-wise* variant swaps with adjacent ions one position at a
  time (Murali-style, ignores intra-trap full connectivity), the
  *direct* variant uses a single long-range SWAP (Dai-style);
* ``ensure_space`` — evict an ion from a full destination trap to a
  neighbouring trap with room;
* ``shuttle`` — emit the split/move/merge record and update the state.

Like S-SYNC, the baselines compile through the pass pipeline
(:mod:`repro.pipeline`): :class:`BaselineMappingPass` runs the
subclass's fixed initial mapping and :class:`BaselineRoutingPass` runs
the greedy gate loop, so baseline results carry the same per-pass
timings as every other compiler.

Neither baseline reasons about the joint cost of SWAPs and shuttles —
that co-optimization is exactly what S-SYNC adds — so both insert more
of at least one of the two on most workloads.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.core.result import CompilationResult
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.pipeline import CompilerPipeline, MetricsPass, Pass, PassContext
from repro.schedule.operations import GateOperation, ShuttleOperation, SwapOperation
from repro.schedule.schedule import Schedule


class BaselineMappingPass(Pass):
    """Run a baseline's fixed initial mapping as the pipeline's first stage."""

    name = "initial-mapping"

    def __init__(self, router: "BaselineRouter") -> None:
        self.router = router

    def run(self, context: PassContext) -> None:
        if context.requested_mapping is not None and context.state is None:
            raise SchedulingError(
                f"the {self.router.name!r} compiler brings its own initial mapping "
                "and does not accept an initial_mapping argument"
            )
        if context.state is not None:  # caller-supplied starting occupancy
            return
        mapped = self.router.build_initial_state(context.circuit)
        context.initial_state = mapped
        context.state = mapped.copy()
        context.mapping_name = f"{self.router.name}-default"

    def statistics(self, context: PassContext) -> dict[str, Any]:
        return {"mapping": context.mapping_name}


class BaselineRoutingPass(Pass):
    """The greedy in-order gate loop shared by both baselines."""

    name = "routing"

    def __init__(self, router: "BaselineRouter") -> None:
        self.router = router

    def run(self, context: PassContext) -> None:
        router = self.router
        circuit = context.circuit
        state = context.require_state()
        schedule = Schedule(router.device, circuit.name)
        upcoming = router._upcoming_partners(circuit)
        pending_1q, trailing_1q = router._partition_single_qubit_gates(circuit)

        for index, gate in enumerate(circuit.gates):
            if gate.is_single_qubit:
                continue
            if not gate.is_two_qubit:
                continue
            for single in pending_1q.pop(index, []):
                router._emit_single_qubit_gate(schedule, state, single)
            if not state.same_trap(*gate.qubits):
                router.route_gate(schedule, state, gate, upcoming)
            router._emit_two_qubit_gate(schedule, state, gate)
            context.statistics.executed_two_qubit_gates += 1
            router._consume_upcoming(upcoming, gate)
        for single in trailing_1q:
            router._emit_single_qubit_gate(schedule, state, single)

        context.schedule = schedule
        context.final_state = state

    def statistics(self, context: PassContext) -> dict[str, Any]:
        return {
            "executed_two_qubit_gates": context.statistics.executed_two_qubit_gates,
        }


class BaselineRouter:
    """Greedy routing primitives shared by the baseline compilers."""

    name = "baseline"

    def __init__(self, device: QCCDDevice) -> None:
        self.device = device

    # ------------------------------------------------------------------
    # template: subclasses provide mapping + per-gate routing policy
    # ------------------------------------------------------------------
    def build_initial_state(self, circuit: QuantumCircuit) -> DeviceState:
        """Construct this baseline's initial mapping."""
        raise NotImplementedError

    def route_gate(
        self, schedule: Schedule, state: DeviceState, gate: Gate, upcoming: dict[int, list[int]]
    ) -> None:
        """Bring the two operands of ``gate`` into one trap."""
        raise NotImplementedError

    def pipeline(self) -> CompilerPipeline:
        """The pass pipeline this baseline assembles."""
        return CompilerPipeline(
            self.name,
            self.device,
            (BaselineMappingPass(self), BaselineRoutingPass(self), MetricsPass()),
        )

    def compile(
        self,
        circuit: QuantumCircuit,
        initial_state: DeviceState | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` with this baseline's policy."""
        return self.pipeline().compile(circuit, initial_state=initial_state)

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _upcoming_partners(circuit: QuantumCircuit) -> dict[int, list[int]]:
        """For every qubit, the ordered list of its future two-qubit partners."""
        partners: dict[int, list[int]] = defaultdict(list)
        for gate in circuit.gates:
            if not gate.is_two_qubit:
                continue
            a, b = gate.qubits
            partners[a].append(b)
            partners[b].append(a)
        return dict(partners)

    @staticmethod
    def _consume_upcoming(upcoming: dict[int, list[int]], gate: Gate) -> None:
        a, b = gate.qubits
        if upcoming.get(a):
            upcoming[a].pop(0)
        if upcoming.get(b):
            upcoming[b].pop(0)

    @staticmethod
    def _partition_single_qubit_gates(
        circuit: QuantumCircuit,
    ) -> tuple[dict[int, list[Gate]], list[Gate]]:
        pending: dict[int, list[Gate]] = defaultdict(list)
        waiting: dict[int, list[Gate]] = defaultdict(list)
        for index, gate in enumerate(circuit.gates):
            if gate.is_two_qubit:
                for q in gate.qubits:
                    if waiting[q]:
                        pending[index].extend(waiting[q])
                        waiting[q] = []
            elif gate.is_single_qubit:
                waiting[gate.qubits[0]].append(gate)
        trailing = [gate for q in sorted(waiting) for gate in waiting[q]]
        return dict(pending), trailing

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def _emit_single_qubit_gate(self, schedule: Schedule, state: DeviceState, gate: Gate) -> None:
        trap = state.trap_of(gate.qubits[0])
        schedule.append(
            GateOperation(gate=gate, trap=trap, chain_length=max(state.chain_length(trap), 1))
        )

    def _emit_two_qubit_gate(self, schedule: Schedule, state: DeviceState, gate: Gate) -> None:
        qubit_a, qubit_b = gate.qubits
        trap = state.trap_of(qubit_a)
        schedule.append(
            GateOperation(
                gate=gate,
                trap=trap,
                chain_length=state.chain_length(trap),
                ion_separation=state.ion_separation(qubit_a, qubit_b),
            )
        )

    def emit_swap(self, schedule: Schedule, state: DeviceState, qubit_a: int, qubit_b: int) -> None:
        """Record and apply one SWAP gate."""
        trap = state.trap_of(qubit_a)
        schedule.append(
            SwapOperation(
                trap=trap,
                qubit_a=qubit_a,
                qubit_b=qubit_b,
                chain_length=state.chain_length(trap),
                ion_separation=state.ion_separation(qubit_a, qubit_b),
            )
        )
        state.swap_qubits(qubit_a, qubit_b)

    def emit_shuttle(
        self, schedule: Schedule, state: DeviceState, qubit: int, target_trap: int
    ) -> None:
        """Record and apply one shuttle of ``qubit`` to an adjacent trap."""
        source_trap = state.trap_of(qubit)
        connection = self.device.connection_between(source_trap, target_trap)
        source_before = state.chain_length(source_trap)
        state.shuttle(qubit, target_trap)
        schedule.append(
            ShuttleOperation(
                qubit=qubit,
                source_trap=source_trap,
                target_trap=target_trap,
                segments=connection.segments,
                junctions=connection.junctions,
                source_chain_length=source_before,
                target_chain_length=state.chain_length(target_trap),
            )
        )

    # ------------------------------------------------------------------
    # routing primitives
    # ------------------------------------------------------------------
    def bring_to_end(
        self,
        schedule: Schedule,
        state: DeviceState,
        qubit: int,
        end: str,
        stepwise: bool,
    ) -> None:
        """SWAP ``qubit`` to one chain end, one hop at a time or directly."""
        if state.is_at_end(qubit, end):
            return
        if stepwise:
            guard = state.chain_length(state.trap_of(qubit)) + 1
            while not state.is_at_end(qubit, end) and guard > 0:
                guard -= 1
                trap = state.trap_of(qubit)
                chain = state.chain(trap)
                index = chain.index(qubit)
                neighbour_index = index - 1 if end == "left" else index + 1
                self.emit_swap(schedule, state, qubit, chain[neighbour_index])
            if not state.is_at_end(qubit, end):  # pragma: no cover - defensive
                raise SchedulingError(f"failed to bring qubit {qubit} to the {end} end")
        else:
            trap = state.trap_of(qubit)
            end_qubit = state.end_qubit(trap, end)
            assert end_qubit is not None and end_qubit != qubit
            self.emit_swap(schedule, state, qubit, end_qubit)

    def ensure_space(
        self,
        schedule: Schedule,
        state: DeviceState,
        trap_id: int,
        protected: tuple[int, ...] = (),
        min_free: int = 1,
    ) -> None:
        """Evict ions from ``trap_id`` until it has ``min_free`` free slots.

        When every neighbour is also full, a free slot is located by
        breadth-first search and the eviction cascades hop by hop along
        that path (each trap pushes one ion into the next, starting from
        the trap adjacent to the free slot).  The BFS keeps the search
        from ping-ponging between two mutually-full neighbours, which the
        previous recursive formulation could do until the stack overflowed.
        """
        guard = self.device.num_traps * max(t.capacity for t in self.device.traps) + 8
        while state.free_slots(trap_id) < min_free:
            guard -= 1
            if guard < 0:
                raise SchedulingError(f"could not free a slot in trap {trap_id}")
            # An intermediate trap may hold only protected ions and refuse to
            # give one up; exclude it and look for a detour before giving up.
            excluded: set[int] = set()
            while True:
                path = self._path_to_free_slot(state, trap_id, excluded)
                if path is None:
                    raise SchedulingError(
                        f"could not free a slot in trap {trap_id}: every route to a "
                        "free slot is blocked"
                    )
                blocked = self._cascade_evictions(schedule, state, path, protected)
                if blocked is None:
                    break
                if blocked == trap_id:
                    raise SchedulingError(
                        f"could not free a slot in trap {trap_id}: it holds only "
                        "protected ions"
                    )
                excluded.add(blocked)

    def _cascade_evictions(
        self,
        schedule: Schedule,
        state: DeviceState,
        path: list[int],
        protected: tuple[int, ...],
    ) -> int | None:
        """Push one ion along ``path`` toward its free-slot end.

        The path is walked backwards so each hop's destination has a free
        slot by the time its ion arrives.  Returns ``None`` on success, or
        the id of a trap whose ions are all protected (so the caller can
        route around it).  Hops already performed are toward free space
        and leave the state legal, so a partial cascade is harmless.
        """
        for source, target in reversed(list(zip(path, path[1:]))):
            end = state.facing_end(source, target)
            victim = state.end_qubit(source, end)
            if victim is None:
                continue  # the source trap is empty — nothing to push on
            if victim in protected:
                # A protected ion blocks the departing end; SWAP it away
                # before evicting, if any other ion is available.
                replacement = next(
                    (q for q in state.chain(source) if q not in protected), None
                )
                if replacement is None:
                    return source
                self.emit_swap(schedule, state, victim, replacement)
                victim = state.end_qubit(source, end)
                assert victim is not None
            self.emit_shuttle(schedule, state, victim, target)
        return None

    def _path_to_free_slot(
        self, state: DeviceState, trap_id: int, excluded: set[int] | None = None
    ) -> list[int] | None:
        """Shortest trap path from ``trap_id`` to the nearest trap with space."""
        excluded = excluded or set()
        parents: dict[int, int] = {trap_id: trap_id}
        queue = [trap_id]
        while queue:
            current = queue.pop(0)
            for neighbour in self.device.neighbors(current):
                if neighbour in parents or neighbour in excluded:
                    continue
                parents[neighbour] = current
                if state.has_space(neighbour):
                    path = [neighbour]
                    while path[-1] != trap_id:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                queue.append(neighbour)
        return None

    def shuttle_along_path(
        self,
        schedule: Schedule,
        state: DeviceState,
        qubit: int,
        target_trap: int,
        stepwise_swaps: bool,
        protected: tuple[int, ...] = (),
        reserve_at_target: int = 1,
    ) -> None:
        """Move ``qubit`` hop by hop to ``target_trap`` along the cheapest route."""
        guard = 4 * self.device.num_traps + 8
        while state.trap_of(qubit) != target_trap:
            guard -= 1
            if guard < 0:
                raise SchedulingError(f"routing qubit {qubit} to trap {target_trap} did not converge")
            source = state.trap_of(qubit)
            next_trap = self.device.next_hop(source, target_trap)
            departing_end = state.facing_end(source, next_trap)
            min_free = reserve_at_target if next_trap == target_trap else 1
            # Free the destination first: an eviction may merge an ion into
            # the source trap's departing end, which would displace ``qubit``
            # if it had already been brought there.
            self.ensure_space(
                schedule, state, next_trap, protected=protected + (qubit,), min_free=min_free
            )
            self.bring_to_end(schedule, state, qubit, departing_end, stepwise_swaps)
            self.emit_shuttle(schedule, state, qubit, next_trap)
