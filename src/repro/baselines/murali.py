"""Murali-et-al.-style baseline compiler (ISCA 2020, QCCDSim policy).

Reimplementation of the greedy compiler the paper compares against
(its source, QCCDSim, is the reference the paper runs directly).  The
policy, per the paper's description (§4.2 "Benchmark Implementation"):

* **Initial mapping** — program qubits are ordered by first use in the
  application and packed into traps in that order, leaving **two** slots
  per trap reserved exclusively for ion shuttling (Observation 3 / Fig. 4
  of the paper).
* **Routing** — two-qubit gates are processed in program order.  When the
  operands sit in different traps, the *first* operand is moved to the
  other operand's trap along the shortest trap path.  The moving ion is
  brought to the chain edge with **step-wise adjacent SWAPs** (the policy
  does not exploit the chain's full connectivity), and a full
  destination trap is cleared by evicting its edge ion to a neighbour.

This reproduces the baseline's qualitative behaviour: both SWAP and
shuttle counts are substantially higher than S-SYNC's, especially for
long-distance communication patterns.
"""

from __future__ import annotations

from repro.baselines.base import BaselineRouter
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.core.state import DeviceState
from repro.exceptions import MappingError
from repro.schedule.schedule import Schedule


class MuraliCompiler(BaselineRouter):
    """Greedy order-of-use mapping with step-wise SWAP routing."""

    name = "murali"

    #: Number of slots each trap keeps free for shuttling (Fig. 4 policy).
    reserved_slots = 2

    def build_initial_state(self, circuit: QuantumCircuit) -> DeviceState:
        order = self._qubits_by_first_use(circuit)
        state = DeviceState(self.device)
        traps = list(self.device.traps)
        trap_index = 0
        for qubit in order:
            placed = False
            while trap_index < len(traps):
                trap = traps[trap_index]
                usable = max(trap.capacity - self.reserved_slots, 1)
                if state.chain_length(trap.trap_id) < usable:
                    state.place(qubit, trap.trap_id)
                    placed = True
                    break
                trap_index += 1
            if not placed:
                # Reserved space exhausted: relax the reservation rather than fail.
                for trap in traps:
                    if state.has_space(trap.trap_id):
                        state.place(qubit, trap.trap_id)
                        placed = True
                        break
            if not placed:
                raise MappingError(
                    f"device {self.device.name} cannot hold {circuit.num_qubits} qubits"
                )
        return state

    @staticmethod
    def _qubits_by_first_use(circuit: QuantumCircuit) -> list[int]:
        """Program qubits ordered by the index of the first gate using them."""
        order: list[int] = []
        seen: set[int] = set()
        for gate in circuit.gates:
            for qubit in gate.qubits:
                if qubit not in seen:
                    seen.add(qubit)
                    order.append(qubit)
        for qubit in range(circuit.num_qubits):
            if qubit not in seen:
                order.append(qubit)
        return order

    def route_gate(
        self, schedule: Schedule, state: DeviceState, gate: Gate, upcoming: dict[int, list[int]]
    ) -> None:
        mover, anchor = gate.qubits
        target_trap = state.trap_of(anchor)
        self.shuttle_along_path(
            schedule,
            state,
            mover,
            target_trap,
            stepwise_swaps=True,
            protected=(anchor,),
            reserve_at_target=1,
        )
