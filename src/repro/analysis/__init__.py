"""Analysis tooling: comparisons, optimality bounds, parameter sweeps, reporting."""

from repro.analysis.ablation import (
    AblationRecord,
    ablation_summary,
    default_variants,
    run_ablation,
)
from repro.analysis.metrics import (
    DEFAULT_COMPILER_NAMES,
    ComparisonRecord,
    compare_compilers,
    compile_with,
    improvement_factors,
    record_from_result,
)
from repro.analysis.optimality import OptimalityReport, evaluate_scenarios, optimality_report
from repro.analysis.reporting import (
    format_grouped_series,
    format_table,
    format_value,
    geometric_mean,
    ratio_summary,
)
from repro.analysis.visualize import (
    render_occupancy,
    render_shuttle_traffic,
    schedule_timeline,
    shuttle_traffic,
)
from repro.analysis.sweeps import (
    CompileTimeRecord,
    SweepRecord,
    compile_time_sweep,
    decay_rate_sweep,
    gate_implementation_sweep,
    initial_mapping_sweep,
    topology_capacity_sweep,
    weight_ratio_sweep,
)

__all__ = [
    "AblationRecord",
    "ComparisonRecord",
    "CompileTimeRecord",
    "DEFAULT_COMPILER_NAMES",
    "OptimalityReport",
    "SweepRecord",
    "ablation_summary",
    "compare_compilers",
    "compile_time_sweep",
    "compile_with",
    "decay_rate_sweep",
    "default_variants",
    "evaluate_scenarios",
    "format_grouped_series",
    "format_table",
    "format_value",
    "gate_implementation_sweep",
    "geometric_mean",
    "improvement_factors",
    "initial_mapping_sweep",
    "optimality_report",
    "ratio_summary",
    "record_from_result",
    "render_occupancy",
    "render_shuttle_traffic",
    "run_ablation",
    "schedule_timeline",
    "shuttle_traffic",
    "topology_capacity_sweep",
    "weight_ratio_sweep",
]
