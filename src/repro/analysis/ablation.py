"""Ablation studies of S-SYNC's design choices.

The scheduler combines several ingredients on top of the plain
distance heuristic: the decay penalty (§3.3), the blocked-trap penalty
(Eq. 2), the two-level initial mapping with intra-trap mountain ordering
(Eq. 3), and — in this reproduction — a shallow DAG lookahead.  The
functions here compile the same workload with individual ingredients
switched off, so their contribution to shuttle/SWAP counts and success
rate can be quantified (the "ablation benches" called out in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.core.mapping import GatheringMapper, InitialMapper
from repro.core.scheduler import SchedulerConfig
from repro.core.state import DeviceState
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.noise.evaluator import evaluate_schedule
from repro.noise.gate_times import GateImplementation


@dataclass(frozen=True)
class AblationRecord:
    """Metrics of one compiler variant on one workload."""

    variant: str
    circuit: str
    device: str
    shuttles: int
    swaps: int
    success_rate: float
    execution_time_us: float
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "variant": self.variant,
            "circuit": self.circuit,
            "device": self.device,
            "shuttles": self.shuttles,
            "swaps": self.swaps,
            "success_rate": self.success_rate,
            "execution_time_us": self.execution_time_us,
            "compile_time_s": self.compile_time_s,
        }


class _FirstFitMapper(InitialMapper):
    """Gathering trap assignment without the Eq.-3 mountain ordering.

    Used by the ``no-mountain-order`` ablation variant: qubits keep their
    program order inside each trap, so the contribution of the intra-trap
    second-level mapping can be isolated.
    """

    name = "gathering-no-mountain"

    def assign_traps(self, circuit: QuantumCircuit, device: QCCDDevice) -> dict[int, list[int]]:
        return GatheringMapper(
            reserve_per_trap=self.reserve_per_trap,
            intra_trap_lookahead=self.intra_trap_lookahead,
        ).assign_traps(circuit, device)

    def map(self, circuit: QuantumCircuit, device: QCCDDevice) -> DeviceState:
        self._check_fit(circuit, device)
        assignment = self.assign_traps(circuit, device)
        self._check_assignment(circuit, device, assignment)
        # Skip the mountain ordering: chains keep ascending program order.
        return DeviceState.from_mapping(device, {t: sorted(qs) for t, qs in assignment.items()})


def default_variants(base: SSyncConfig | None = None) -> dict[str, SSyncConfig | tuple[SSyncConfig, InitialMapper]]:
    """The standard ablation variants keyed by name.

    ``full``             — the default configuration;
    ``no-lookahead``     — the paper-faithful frontier-only heuristic;
    ``no-decay``         — decay penalty disabled (δ = 0);
    ``no-mountain-order``— gathering mapping without Eq.-3 intra-trap ordering;
    ``greedy-weights``   — shuttle and SWAP weights equalised, removing the
                           co-optimization pressure between the two.
    """
    base = base or SSyncConfig()
    equal_weights = base.scheduler.weights
    equal_weights = replace(
        equal_weights, inner_weight=equal_weights.shuttle_weight / 2.0,
        threshold=equal_weights.shuttle_weight * 0.75,
    )
    return {
        "full": base,
        "no-lookahead": replace(base, scheduler=replace(base.scheduler, lookahead_depth=0)),
        "no-decay": base.with_decay(0.0),
        "no-mountain-order": (base, _FirstFitMapper()),
        "greedy-weights": replace(base, scheduler=replace(base.scheduler, weights=equal_weights)),
    }


def run_ablation(
    circuit: QuantumCircuit,
    device: QCCDDevice,
    variants: dict[str, SSyncConfig | tuple[SSyncConfig, InitialMapper]] | None = None,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
) -> list[AblationRecord]:
    """Compile ``circuit`` once per variant and collect the paper's metrics."""
    variants = variants if variants is not None else default_variants()
    if not variants:
        raise ReproError("run_ablation needs at least one variant")
    records: list[AblationRecord] = []
    for name, spec in variants.items():
        if isinstance(spec, tuple):
            config, mapper = spec
        else:
            config, mapper = spec, None
        compiler = SSyncCompiler(device, config)
        result = compiler.compile(circuit, initial_mapping=mapper)
        evaluation = evaluate_schedule(result.schedule, gate_implementation=gate_implementation)
        records.append(
            AblationRecord(
                variant=name,
                circuit=circuit.name,
                device=device.name,
                shuttles=result.shuttle_count,
                swaps=result.swap_count,
                success_rate=evaluation.success_rate,
                execution_time_us=evaluation.execution_time_us,
                compile_time_s=result.compile_time_s,
            )
        )
    return records


def ablation_summary(records: Sequence[AblationRecord]) -> dict[str, float]:
    """Relative shuttle overhead of every variant versus the ``full`` variant."""
    by_variant = {record.variant: record for record in records}
    if "full" not in by_variant:
        raise ReproError("ablation_summary expects a 'full' variant record")
    full = by_variant["full"]
    baseline = max(full.shuttles, 1)
    return {
        name: record.shuttles / baseline for name, record in by_variant.items()
    }
