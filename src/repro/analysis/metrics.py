"""Comparison metrics: run several compilers on one workload and tabulate.

This is the machinery behind Figs. 8–10: for a (circuit, device) pair it
compiles with S-SYNC and the baselines, evaluates every schedule under
the same noise configuration, and returns one record per compiler with
the paper's metrics (shuttles, SWAPs, success rate, execution time,
compile time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import SSyncConfig
from repro.core.result import CompilationResult
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.noise.evaluator import EvaluationResult
from repro.noise.gate_times import GateImplementation
from repro.noise.heating import HeatingParameters
from repro.registry import normalize_compiler_name as normalize_compiler_name  # noqa: F401
from repro.runtime.api import run_batch
from repro.runtime.cache import ScheduleCache
from repro.runtime.jobs import CompileJob, compile_job

# Compiler-name resolution lives in :mod:`repro.registry`; the re-export
# above is a deprecation shim for callers that used to resolve aliases
# through this module.


@dataclass(frozen=True)
class ComparisonRecord:
    """One compiler's results on one (circuit, device) pair."""

    circuit: str
    device: str
    compiler: str
    shuttles: int
    swaps: int
    two_qubit_gates: int
    success_rate: float
    log_success_rate: float
    execution_time_us: float
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "circuit": self.circuit,
            "device": self.device,
            "compiler": self.compiler,
            "shuttles": self.shuttles,
            "swaps": self.swaps,
            "two_qubit_gates": self.two_qubit_gates,
            "success_rate": self.success_rate,
            "log_success_rate": self.log_success_rate,
            "execution_time_us": self.execution_time_us,
            "compile_time_s": self.compile_time_s,
        }


#: The compiler line-up of Figs. 8–10, in the paper's plotting order.
DEFAULT_COMPILER_NAMES = ("murali", "dai", "s-sync")


def compile_with(
    name: str,
    circuit: QuantumCircuit,
    device: QCCDDevice,
    ssync_config: SSyncConfig | None = None,
    initial_mapping: str | None = None,
) -> CompilationResult:
    """Compile ``circuit`` with any registered compiler by name.

    The name dispatch (including aliases) lives in :mod:`repro.registry`
    so every entry point — including compilers added via
    :func:`repro.registry.register_compiler` — accepts the same names.
    """
    return compile_job(
        CompileJob(
            circuit=circuit,
            device=device,
            compiler=name,
            initial_mapping=initial_mapping,
            config=ssync_config,
        )
    )


def record_from_result(
    result: CompilationResult, evaluation: EvaluationResult
) -> ComparisonRecord:
    """Fuse a compilation result and its evaluation into one record."""
    return ComparisonRecord(
        circuit=result.schedule.circuit_name,
        device=result.schedule.device.name,
        compiler=result.compiler_name,
        shuttles=result.shuttle_count,
        swaps=result.swap_count,
        two_qubit_gates=result.two_qubit_gate_count,
        success_rate=evaluation.success_rate,
        log_success_rate=evaluation.log_success_rate,
        execution_time_us=evaluation.execution_time_us,
        compile_time_s=result.compile_time_s,
    )


def compare_compilers(
    circuit: QuantumCircuit,
    device: QCCDDevice,
    compilers: tuple[str, ...] = DEFAULT_COMPILER_NAMES,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    heating: HeatingParameters | None = None,
    ssync_config: SSyncConfig | None = None,
    initial_mapping: str | None = None,
    workers: int | None = 1,
    cache: "ScheduleCache | None" = None,
) -> list[ComparisonRecord]:
    """Compile and evaluate ``circuit`` on ``device`` with every compiler.

    Runs through the batch runtime: with ``workers > 1`` the compilers
    compile in parallel processes, and a shared ``cache`` lets repeated
    comparisons skip compilation entirely.
    """
    jobs = [
        CompileJob(
            circuit=circuit,
            device=device,
            compiler=name,
            initial_mapping=initial_mapping,
            config=ssync_config,
            gate_implementation=gate_implementation,
            heating=heating,
            label=name,
        )
        for name in compilers
    ]
    result = run_batch(jobs, workers=workers, cache=cache)
    return [
        ComparisonRecord(
            circuit=str(row["circuit"]),
            device=str(row["device"]),
            compiler=str(row["compiler"]),
            shuttles=int(row["shuttles"]),  # type: ignore[arg-type]
            swaps=int(row["swaps"]),  # type: ignore[arg-type]
            two_qubit_gates=int(row["two_qubit_gates"]),  # type: ignore[arg-type]
            success_rate=float(row["success_rate"]),  # type: ignore[arg-type]
            log_success_rate=float(row["log_success_rate"]),  # type: ignore[arg-type]
            execution_time_us=float(row["execution_time_us"]),  # type: ignore[arg-type]
            compile_time_s=float(row["compile_time_s"]),  # type: ignore[arg-type]
        )
        for row in result.as_dicts()
    ]


def improvement_factors(records: list[ComparisonRecord]) -> dict[str, float]:
    """Headline ratios of the paper: baseline-vs-S-SYNC shuttle and success-rate factors.

    Returns ``shuttle_reduction`` (average baseline shuttles / S-SYNC
    shuttles) and ``success_rate_gain`` (average S-SYNC success rate /
    baseline success rate), computed against the best baseline record in
    the list for each metric.
    """
    ssync = [r for r in records if r.compiler == "s-sync"]
    baselines = [r for r in records if r.compiler != "s-sync"]
    if not ssync or not baselines:
        raise ReproError("improvement factors need both an S-SYNC record and a baseline record")
    ours = ssync[0]
    shuttle_ratios = [
        r.shuttles / ours.shuttles for r in baselines if ours.shuttles > 0
    ]
    success_ratios = [
        ours.success_rate / r.success_rate for r in baselines if r.success_rate > 0
    ]
    return {
        "shuttle_reduction": (sum(shuttle_ratios) / len(shuttle_ratios)) if shuttle_ratios else float("inf"),
        "success_rate_gain": (sum(success_ratios) / len(success_ratios)) if success_ratios else float("inf"),
    }
