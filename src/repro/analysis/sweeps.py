"""Parameter sweeps behind Figs. 11–15.

Each function describes a family of compilations varying one knob —
topology & capacity (Fig. 11), initial mapping & application size
(Fig. 12), gate implementation (Fig. 13), heuristic hyper-parameters
(Fig. 14) or application size for compilation-time scaling (Fig. 15) —
and returns flat records that the benchmark harnesses print and the
tests assert on.

Since the batch runtime landed, sweeps are *declarative*: every function
builds a list of :class:`~repro.runtime.jobs.CompileJob` items (the
``*_jobs`` builders, public so callers can compose or inspect them) and
routes it through :func:`repro.runtime.run_sweep`.  That buys each sweep
process-level parallelism (``workers``), cross-run schedule caching
(``cache``) and automatic deduplication — e.g. the gate-implementation
sweep compiles each circuit once and re-evaluates it per implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import SSyncConfig
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.presets import paper_device, paper_preset
from repro.noise.gate_times import GateImplementation
from repro.registry import normalize_compiler_name
from repro.runtime.api import run_sweep
from repro.runtime.cache import ScheduleCache
from repro.runtime.jobs import CompileJob

CircuitFactory = Callable[[int], QuantumCircuit]


@dataclass(frozen=True)
class SweepRecord:
    """One sweep point: the swept settings plus the paper's metrics."""

    label: str
    circuit: str
    device: str
    parameter: str
    value: float | str
    shuttles: int
    swaps: int
    success_rate: float
    execution_time_us: float
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "label": self.label,
            "circuit": self.circuit,
            "device": self.device,
            "parameter": self.parameter,
            "value": self.value,
            "shuttles": self.shuttles,
            "swaps": self.swaps,
            "success_rate": self.success_rate,
            "execution_time_us": self.execution_time_us,
            "compile_time_s": self.compile_time_s,
        }


def _sweep_records(
    jobs: Sequence[CompileJob],
    workers: int | None,
    cache: ScheduleCache | None,
) -> list[SweepRecord]:
    """Run sweep jobs through the batch runtime and shape the rows."""
    rows = run_sweep(jobs, workers=workers, cache=cache)
    return [
        SweepRecord(
            label=str(row["label"]),
            circuit=str(row["circuit"]),
            device=str(row["device"]),
            parameter=str(row["parameter"]),
            value=row["value"],  # type: ignore[arg-type]
            shuttles=int(row["shuttles"]),  # type: ignore[arg-type]
            swaps=int(row["swaps"]),  # type: ignore[arg-type]
            success_rate=float(row["success_rate"]),  # type: ignore[arg-type]
            execution_time_us=float(row["execution_time_us"]),  # type: ignore[arg-type]
            compile_time_s=float(row["compile_time_s"]),  # type: ignore[arg-type]
        )
        for row in rows
    ]


# ----------------------------------------------------------------------
# Fig. 11 — topology and capacity sweep
# ----------------------------------------------------------------------
def topology_capacity_jobs(
    circuit_factory: CircuitFactory,
    circuit_size: int,
    topology_names: Sequence[str],
    capacities: Sequence[int],
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 11 job list (infeasible sweep points are skipped)."""
    jobs: list[CompileJob] = []
    circuit = circuit_factory(circuit_size)
    for name in topology_names:
        preset = paper_preset(name)
        for capacity in capacities:
            device = paper_device(name, capacity)
            if device.total_capacity <= circuit.num_qubits:
                continue
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    gate_implementation=gate_implementation,
                    config=ssync_config,
                    label=name,
                    parameter="total_capacity",
                    value=capacity * preset.num_traps,
                )
            )
    return jobs


def topology_capacity_sweep(
    circuit_factory: CircuitFactory,
    circuit_size: int,
    topology_names: Sequence[str],
    capacities: Sequence[int],
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[SweepRecord]:
    """Success rate and execution time versus total trap capacity per topology.

    Sweep points where the circuit does not fit the device (too few total
    slots) are skipped, mirroring the gaps in the paper's Fig. 11 curves.
    """
    jobs = topology_capacity_jobs(
        circuit_factory,
        circuit_size,
        topology_names,
        capacities,
        gate_implementation=gate_implementation,
        ssync_config=ssync_config,
    )
    return _sweep_records(jobs, workers, cache)


# ----------------------------------------------------------------------
# Fig. 12 — initial mapping sweep
# ----------------------------------------------------------------------
def initial_mapping_jobs(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device_name: str,
    mappings: Sequence[str] = ("gathering", "even-divided", "sta"),
    capacity: int | None = None,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 12 job list."""
    jobs: list[CompileJob] = []
    for size in circuit_sizes:
        circuit = circuit_factory(size)
        device = paper_device(device_name, capacity)
        if device.total_capacity <= circuit.num_qubits:
            continue
        for mapping in mappings:
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    initial_mapping=mapping,
                    gate_implementation=gate_implementation,
                    config=ssync_config,
                    label=mapping,
                    parameter="application_size",
                    value=size,
                )
            )
    return jobs


def initial_mapping_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device_name: str,
    mappings: Sequence[str] = ("gathering", "even-divided", "sta"),
    capacity: int | None = None,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[SweepRecord]:
    """Shuttle/SWAP/time/success-rate versus application size per mapping."""
    jobs = initial_mapping_jobs(
        circuit_factory,
        circuit_sizes,
        device_name,
        mappings=mappings,
        capacity=capacity,
        gate_implementation=gate_implementation,
        ssync_config=ssync_config,
    )
    return _sweep_records(jobs, workers, cache)


# ----------------------------------------------------------------------
# Fig. 13 — gate implementation sweep
# ----------------------------------------------------------------------
def gate_implementation_jobs(
    circuits: Sequence[QuantumCircuit],
    device: QCCDDevice,
    implementations: Sequence[GateImplementation | str] = (
        GateImplementation.FM,
        GateImplementation.AM1,
        GateImplementation.AM2,
        GateImplementation.PM,
    ),
    ssync_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 13 job list (one job per circuit × implementation)."""
    jobs: list[CompileJob] = []
    for circuit in circuits:
        for implementation in implementations:
            impl = GateImplementation.from_name(implementation)
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    gate_implementation=impl,
                    config=ssync_config,
                    label=impl.value,
                    parameter="gate_implementation",
                    value=impl.value,
                )
            )
    return jobs


def gate_implementation_sweep(
    circuits: Sequence[QuantumCircuit],
    device: QCCDDevice,
    implementations: Sequence[GateImplementation | str] = (
        GateImplementation.FM,
        GateImplementation.AM1,
        GateImplementation.AM2,
        GateImplementation.PM,
    ),
    ssync_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[SweepRecord]:
    """Success rate of each application under each gate implementation.

    The jobs for one circuit share a compile fingerprint, so the batch
    runtime compiles each circuit once and re-evaluates the schedule
    under every implementation (the compiler itself is implementation
    agnostic).
    """
    jobs = gate_implementation_jobs(
        circuits, device, implementations=implementations, ssync_config=ssync_config
    )
    return _sweep_records(jobs, workers, cache)


# ----------------------------------------------------------------------
# Fig. 14 — hyper-parameter sensitivity
# ----------------------------------------------------------------------
def weight_ratio_jobs(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    ratios: Sequence[float] = (100.0, 1000.0, 10000.0, 100000.0),
    base_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 14 (left) job list."""
    jobs: list[CompileJob] = []
    base = base_config or SSyncConfig()
    for ratio in ratios:
        config = base.with_weight_ratio(ratio)
        for size in circuit_sizes:
            circuit = circuit_factory(size)
            if device.total_capacity <= circuit.num_qubits:
                continue
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    config=config,
                    label=f"r{int(ratio)}",
                    parameter="weight_ratio",
                    value=ratio,
                )
            )
    return jobs


def weight_ratio_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    ratios: Sequence[float] = (100.0, 1000.0, 10000.0, 100000.0),
    base_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[SweepRecord]:
    """Success rate versus the shuttle/inner weight ratio ``r`` (Fig. 14 left)."""
    jobs = weight_ratio_jobs(
        circuit_factory, circuit_sizes, device, ratios=ratios, base_config=base_config
    )
    return _sweep_records(jobs, workers, cache)


def decay_rate_jobs(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    deltas: Sequence[float] = (0.0, 0.01, 0.001, 0.0001),
    base_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 14 (right) job list."""
    jobs: list[CompileJob] = []
    base = base_config or SSyncConfig()
    for delta in deltas:
        config = base.with_decay(delta)
        for size in circuit_sizes:
            circuit = circuit_factory(size)
            if device.total_capacity <= circuit.num_qubits:
                continue
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    config=config,
                    label=f"d{delta}",
                    parameter="decay_delta",
                    value=delta,
                )
            )
    return jobs


def decay_rate_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    deltas: Sequence[float] = (0.0, 0.01, 0.001, 0.0001),
    base_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[SweepRecord]:
    """Success rate versus the decay rate δ (Fig. 14 right)."""
    jobs = decay_rate_jobs(
        circuit_factory, circuit_sizes, device, deltas=deltas, base_config=base_config
    )
    return _sweep_records(jobs, workers, cache)


# ----------------------------------------------------------------------
# Fig. 15 — compilation time scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompileTimeRecord:
    """One compile-time measurement point."""

    compiler: str
    circuit: str
    application_size: int
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "compiler": self.compiler,
            "circuit": self.circuit,
            "application_size": self.application_size,
            "compile_time_s": self.compile_time_s,
        }


def compile_time_jobs(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    compilers: Sequence[str] = ("murali", "s-sync"),
    ssync_config: SSyncConfig | None = None,
) -> list[CompileJob]:
    """Build the Fig. 15 job list (one job per size × compiler).

    Compiler names resolve through :mod:`repro.registry`, so aliases and
    third-party backends work and unknown names fail before any
    compilation starts.
    """
    if not compilers:
        raise ReproError("compile_time_sweep needs at least one compiler")
    names = [normalize_compiler_name(name) for name in compilers]
    jobs: list[CompileJob] = []
    for size in circuit_sizes:
        circuit = circuit_factory(size)
        if device.total_capacity <= circuit.num_qubits:
            continue
        for name in names:
            jobs.append(
                CompileJob(
                    circuit=circuit,
                    device=device,
                    compiler=name,
                    config=ssync_config,
                    label=name,
                    parameter="application_size",
                    value=size,
                )
            )
    return jobs


def compile_time_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    compilers: Sequence[str] = ("murali", "s-sync"),
    ssync_config: SSyncConfig | None = None,
    workers: int | None = 1,
    cache: ScheduleCache | None = None,
) -> list[CompileTimeRecord]:
    """Wall-clock compilation time versus application size per compiler.

    Compile times come from the compiler's own stopwatch
    (:attr:`CompilationResult.compile_time_s`), so they stay meaningful
    under parallel execution; a cache hit reports the original
    compilation's time.
    """
    jobs = compile_time_jobs(
        circuit_factory, circuit_sizes, device, compilers=compilers, ssync_config=ssync_config
    )
    rows = run_sweep(jobs, workers=workers, cache=cache)
    return [
        CompileTimeRecord(
            compiler=str(row["compiler"]),
            circuit=str(row["circuit"]),
            application_size=int(row["value"]),  # type: ignore[arg-type]
            compile_time_s=float(row["compile_time_s"]),  # type: ignore[arg-type]
        )
        for row in rows
    ]
