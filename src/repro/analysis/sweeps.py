"""Parameter sweeps behind Figs. 11–15.

Each function runs a family of compilations while varying one knob —
topology & capacity (Fig. 11), initial mapping & application size
(Fig. 12), gate implementation (Fig. 13), heuristic hyper-parameters
(Fig. 14) or application size for compilation-time scaling (Fig. 15) —
and returns flat records that the benchmark harnesses print and the
tests assert on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.metrics import compile_with
from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.exceptions import ReproError
from repro.hardware.device import QCCDDevice
from repro.hardware.presets import paper_device, paper_preset
from repro.noise.evaluator import evaluate_schedule
from repro.noise.gate_times import GateImplementation
from repro.noise.heating import HeatingParameters

CircuitFactory = Callable[[int], QuantumCircuit]


@dataclass(frozen=True)
class SweepRecord:
    """One sweep point: the swept settings plus the paper's metrics."""

    label: str
    circuit: str
    device: str
    parameter: str
    value: float | str
    shuttles: int
    swaps: int
    success_rate: float
    execution_time_us: float
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "label": self.label,
            "circuit": self.circuit,
            "device": self.device,
            "parameter": self.parameter,
            "value": self.value,
            "shuttles": self.shuttles,
            "swaps": self.swaps,
            "success_rate": self.success_rate,
            "execution_time_us": self.execution_time_us,
            "compile_time_s": self.compile_time_s,
        }


def _compile_and_evaluate(
    label: str,
    parameter: str,
    value: float | str,
    circuit: QuantumCircuit,
    device: QCCDDevice,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    heating: HeatingParameters | None = None,
    ssync_config: SSyncConfig | None = None,
    initial_mapping: str | None = None,
) -> SweepRecord:
    result = SSyncCompiler(device, ssync_config).compile(circuit, initial_mapping=initial_mapping)
    evaluation = evaluate_schedule(result.schedule, gate_implementation, heating)
    return SweepRecord(
        label=label,
        circuit=circuit.name,
        device=device.name,
        parameter=parameter,
        value=value,
        shuttles=result.shuttle_count,
        swaps=result.swap_count,
        success_rate=evaluation.success_rate,
        execution_time_us=evaluation.execution_time_us,
        compile_time_s=result.compile_time_s,
    )


# ----------------------------------------------------------------------
# Fig. 11 — topology and capacity sweep
# ----------------------------------------------------------------------
def topology_capacity_sweep(
    circuit_factory: CircuitFactory,
    circuit_size: int,
    topology_names: Sequence[str],
    capacities: Sequence[int],
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
) -> list[SweepRecord]:
    """Success rate and execution time versus total trap capacity per topology.

    Sweep points where the circuit does not fit the device (too few total
    slots) are skipped, mirroring the gaps in the paper's Fig. 11 curves.
    """
    records: list[SweepRecord] = []
    circuit = circuit_factory(circuit_size)
    for name in topology_names:
        preset = paper_preset(name)
        for capacity in capacities:
            device = paper_device(name, capacity)
            if device.total_capacity <= circuit.num_qubits:
                continue
            records.append(
                _compile_and_evaluate(
                    label=name,
                    parameter="total_capacity",
                    value=capacity * preset.num_traps,
                    circuit=circuit,
                    device=device,
                    gate_implementation=gate_implementation,
                    ssync_config=ssync_config,
                )
            )
    return records


# ----------------------------------------------------------------------
# Fig. 12 — initial mapping sweep
# ----------------------------------------------------------------------
def initial_mapping_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device_name: str,
    mappings: Sequence[str] = ("gathering", "even-divided", "sta"),
    capacity: int | None = None,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    ssync_config: SSyncConfig | None = None,
) -> list[SweepRecord]:
    """Shuttle/SWAP/time/success-rate versus application size per mapping."""
    records: list[SweepRecord] = []
    for size in circuit_sizes:
        circuit = circuit_factory(size)
        device = paper_device(device_name, capacity)
        if device.total_capacity <= circuit.num_qubits:
            continue
        for mapping in mappings:
            records.append(
                _compile_and_evaluate(
                    label=mapping,
                    parameter="application_size",
                    value=size,
                    circuit=circuit,
                    device=device,
                    gate_implementation=gate_implementation,
                    ssync_config=ssync_config,
                    initial_mapping=mapping,
                )
            )
    return records


# ----------------------------------------------------------------------
# Fig. 13 — gate implementation sweep
# ----------------------------------------------------------------------
def gate_implementation_sweep(
    circuits: Sequence[QuantumCircuit],
    device: QCCDDevice,
    implementations: Sequence[GateImplementation | str] = (
        GateImplementation.FM,
        GateImplementation.AM1,
        GateImplementation.AM2,
        GateImplementation.PM,
    ),
    ssync_config: SSyncConfig | None = None,
) -> list[SweepRecord]:
    """Success rate of each application under each gate implementation.

    Each circuit is compiled once and the schedule re-evaluated under
    every implementation (the compiler itself is implementation
    agnostic).
    """
    records: list[SweepRecord] = []
    for circuit in circuits:
        result = SSyncCompiler(device, ssync_config).compile(circuit)
        for implementation in implementations:
            impl = GateImplementation.from_name(implementation)
            evaluation = evaluate_schedule(result.schedule, impl)
            records.append(
                SweepRecord(
                    label=impl.value,
                    circuit=circuit.name,
                    device=device.name,
                    parameter="gate_implementation",
                    value=impl.value,
                    shuttles=result.shuttle_count,
                    swaps=result.swap_count,
                    success_rate=evaluation.success_rate,
                    execution_time_us=evaluation.execution_time_us,
                    compile_time_s=result.compile_time_s,
                )
            )
    return records


# ----------------------------------------------------------------------
# Fig. 14 — hyper-parameter sensitivity
# ----------------------------------------------------------------------
def weight_ratio_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    ratios: Sequence[float] = (100.0, 1000.0, 10000.0, 100000.0),
    base_config: SSyncConfig | None = None,
) -> list[SweepRecord]:
    """Success rate versus the shuttle/inner weight ratio ``r`` (Fig. 14 left)."""
    records: list[SweepRecord] = []
    base = base_config or SSyncConfig()
    for ratio in ratios:
        config = base.with_weight_ratio(ratio)
        for size in circuit_sizes:
            circuit = circuit_factory(size)
            if device.total_capacity <= circuit.num_qubits:
                continue
            records.append(
                _compile_and_evaluate(
                    label=f"r{int(ratio)}",
                    parameter="weight_ratio",
                    value=ratio,
                    circuit=circuit,
                    device=device,
                    ssync_config=config,
                )
            )
    return records


def decay_rate_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    deltas: Sequence[float] = (0.0, 0.01, 0.001, 0.0001),
    base_config: SSyncConfig | None = None,
) -> list[SweepRecord]:
    """Success rate versus the decay rate δ (Fig. 14 right)."""
    records: list[SweepRecord] = []
    base = base_config or SSyncConfig()
    for delta in deltas:
        config = base.with_decay(delta)
        for size in circuit_sizes:
            circuit = circuit_factory(size)
            if device.total_capacity <= circuit.num_qubits:
                continue
            records.append(
                _compile_and_evaluate(
                    label=f"d{delta}",
                    parameter="decay_delta",
                    value=delta,
                    circuit=circuit,
                    device=device,
                    ssync_config=config,
                )
            )
    return records


# ----------------------------------------------------------------------
# Fig. 15 — compilation time scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompileTimeRecord:
    """One compile-time measurement point."""

    compiler: str
    circuit: str
    application_size: int
    compile_time_s: float

    def as_dict(self) -> dict[str, object]:
        """Flat dictionary for reporting."""
        return {
            "compiler": self.compiler,
            "circuit": self.circuit,
            "application_size": self.application_size,
            "compile_time_s": self.compile_time_s,
        }


def compile_time_sweep(
    circuit_factory: CircuitFactory,
    circuit_sizes: Sequence[int],
    device: QCCDDevice,
    compilers: Sequence[str] = ("murali", "s-sync"),
    ssync_config: SSyncConfig | None = None,
) -> list[CompileTimeRecord]:
    """Wall-clock compilation time versus application size per compiler."""
    if not compilers:
        raise ReproError("compile_time_sweep needs at least one compiler")
    records: list[CompileTimeRecord] = []
    for size in circuit_sizes:
        circuit = circuit_factory(size)
        if device.total_capacity <= circuit.num_qubits:
            continue
        for name in compilers:
            start = time.perf_counter()
            compile_with(name, circuit, device, ssync_config=ssync_config)
            elapsed = time.perf_counter() - start
            records.append(
                CompileTimeRecord(
                    compiler=name,
                    circuit=circuit.name,
                    application_size=size,
                    compile_time_s=elapsed,
                )
            )
    return records
