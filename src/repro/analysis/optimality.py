"""Optimality analysis (Fig. 16): ideal, perfect-shuttle and perfect-SWAP bounds.

The paper bounds how far S-SYNC sits from an unobtainable optimum by
re-scoring its schedules under three idealised assumptions:

* **perfect shuttle** — every ion move is free: shuttles cost no time and
  add no heating (but inserted SWAP gates still count);
* **perfect SWAP** — every ion that needs to shuttle is already at a trap
  edge: inserted SWAP gates are free (but shuttles still count);
* **ideal** — both of the above: only the program's own gates contribute.

These are upper bounds on the achievable success rate because no real
schedule can beat a schedule whose overheads have been deleted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import SSyncCompiler, SSyncConfig
from repro.core.result import CompilationResult
from repro.hardware.device import QCCDDevice
from repro.noise.evaluator import EvaluationResult, evaluate_schedule
from repro.noise.gate_times import GateImplementation
from repro.noise.heating import HeatingParameters


@dataclass(frozen=True)
class OptimalityReport:
    """Success rates of one schedule under the four Fig.-16 scenarios."""

    circuit: str
    device: str
    s_sync: float
    perfect_shuttle: float
    perfect_swap: float
    ideal: float

    def as_dict(self) -> dict[str, float | str]:
        """Flat dictionary for reporting."""
        return {
            "circuit": self.circuit,
            "device": self.device,
            "s_sync": self.s_sync,
            "perfect_shuttle": self.perfect_shuttle,
            "perfect_swap": self.perfect_swap,
            "ideal": self.ideal,
        }

    @property
    def shuttle_gap(self) -> float:
        """Ratio perfect-shuttle / S-SYNC (≥ 1; how much shuttles cost us)."""
        return self.perfect_shuttle / self.s_sync if self.s_sync > 0 else float("inf")

    @property
    def swap_gap(self) -> float:
        """Ratio perfect-SWAP / S-SYNC (≥ 1; how much inserted SWAPs cost us)."""
        return self.perfect_swap / self.s_sync if self.s_sync > 0 else float("inf")


def evaluate_scenarios(
    result: CompilationResult,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    heating: HeatingParameters | None = None,
) -> dict[str, EvaluationResult]:
    """Evaluate one compiled schedule under the four Fig.-16 scenarios."""
    schedule = result.schedule
    return {
        "s_sync": evaluate_schedule(schedule, gate_implementation, heating),
        "perfect_shuttle": evaluate_schedule(
            schedule, gate_implementation, heating, ignore_shuttle_cost=True
        ),
        "perfect_swap": evaluate_schedule(
            schedule, gate_implementation, heating, ignore_swap_cost=True
        ),
        "ideal": evaluate_schedule(
            schedule,
            gate_implementation,
            heating,
            ignore_shuttle_cost=True,
            ignore_swap_cost=True,
        ),
    }


def optimality_report(
    circuit: QuantumCircuit,
    device: QCCDDevice,
    gate_implementation: GateImplementation | str = GateImplementation.FM,
    heating: HeatingParameters | None = None,
    ssync_config: SSyncConfig | None = None,
    initial_mapping: str | None = None,
) -> OptimalityReport:
    """Compile ``circuit`` with S-SYNC and report the Fig.-16 scenario bounds."""
    result = SSyncCompiler(device, ssync_config).compile(circuit, initial_mapping=initial_mapping)
    scenarios = evaluate_scenarios(result, gate_implementation, heating)
    return OptimalityReport(
        circuit=circuit.name,
        device=device.name,
        s_sync=scenarios["s_sync"].success_rate,
        perfect_shuttle=scenarios["perfect_shuttle"].success_rate,
        perfect_swap=scenarios["perfect_swap"].success_rate,
        ideal=scenarios["ideal"].success_rate,
    )
