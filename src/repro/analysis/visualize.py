"""Plain-text visualisation helpers for device states and schedules.

Nothing here requires plotting libraries: the goal is quick, greppable
insight when debugging a mapping or a schedule —

* :func:`render_occupancy` draws each trap's ion chain and free slots,
* :func:`schedule_timeline` lists the first operations of a schedule in a
  compact one-line-per-operation form,
* :func:`shuttle_traffic` aggregates how many shuttles crossed each
  trap-to-trap connection (the congestion picture behind Fig. 11's
  topology discussion).
"""

from __future__ import annotations

from collections import Counter

from repro.core.state import DeviceState
from repro.exceptions import ReproError
from repro.schedule.operations import (
    GateOperation,
    ShuttleOperation,
    SpaceShiftOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule


def render_occupancy(state: DeviceState, qubit_width: int = 3) -> str:
    """Render every trap's chain as ``[q00 q01 .  .  ]`` style rows.

    Occupied slots show the program qubit number, free slots show a dot.
    """
    if qubit_width < 1:
        raise ReproError("qubit_width must be at least 1")
    lines = []
    for trap in state.device.traps:
        chain = state.chain(trap.trap_id)
        cells = [f"q{qubit:0{qubit_width - 1}d}" for qubit in chain]
        cells.extend(["." * qubit_width] * state.free_slots(trap.trap_id))
        lines.append(
            f"{trap.name:>8s} ({len(chain):2d}/{trap.capacity:2d}): " + " ".join(cells)
        )
    return "\n".join(lines)


def _describe(operation) -> str:
    if isinstance(operation, GateOperation):
        operands = ",".join(str(q) for q in operation.gate.qubits)
        return f"gate  {operation.gate.name:<5s} q[{operands}] @trap{operation.trap}"
    if isinstance(operation, SwapOperation):
        return (
            f"swap  q{operation.qubit_a}<->q{operation.qubit_b} @trap{operation.trap} "
            f"(separation {operation.ion_separation})"
        )
    if isinstance(operation, ShuttleOperation):
        return (
            f"shutl q{operation.qubit} trap{operation.source_trap}->trap{operation.target_trap} "
            f"({operation.segments} seg, {operation.junctions} junc)"
        )
    if isinstance(operation, SpaceShiftOperation):
        return (
            f"shift q{operation.qubit} pos{operation.from_position}->pos{operation.to_position} "
            f"@trap{operation.trap}"
        )
    return f"op    {operation.kind}"  # pragma: no cover - defensive


def schedule_timeline(schedule: Schedule, max_operations: int = 40) -> str:
    """A compact, indexed listing of the first ``max_operations`` operations."""
    if max_operations < 1:
        raise ReproError("max_operations must be at least 1")
    lines = [
        f"schedule {schedule.circuit_name!r} on {schedule.device.name}: "
        f"{len(schedule)} operations "
        f"({schedule.two_qubit_gate_count} 2q gates, {schedule.swap_count} swaps, "
        f"{schedule.shuttle_count} shuttles)"
    ]
    for index, operation in enumerate(schedule):
        if index >= max_operations:
            lines.append(f"... ({len(schedule) - max_operations} more operations)")
            break
        lines.append(f"{index:5d}  {_describe(operation)}")
    return "\n".join(lines)


def shuttle_traffic(schedule: Schedule) -> dict[tuple[int, int], int]:
    """Shuttle counts per undirected trap pair, most used first."""
    counter: Counter[tuple[int, int]] = Counter()
    for operation in schedule:
        if isinstance(operation, ShuttleOperation):
            pair = tuple(sorted((operation.source_trap, operation.target_trap)))
            counter[pair] += 1
    return dict(sorted(counter.items(), key=lambda item: (-item[1], item[0])))


def render_shuttle_traffic(schedule: Schedule, width: int = 40) -> str:
    """Text bar chart of shuttle traffic per connection."""
    traffic = shuttle_traffic(schedule)
    if not traffic:
        return "no shuttles in this schedule"
    peak = max(traffic.values())
    lines = []
    for (trap_a, trap_b), count in traffic.items():
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"trap{trap_a:<3d}<->trap{trap_b:<3d} {count:4d} {bar}")
    return "\n".join(lines)
