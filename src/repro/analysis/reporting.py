"""Plain-text reporting helpers used by the benchmark harnesses.

The paper's artefacts are figures; this reproduction regenerates their
underlying data as text tables so they can be diffed, asserted on and
pasted into EXPERIMENTS.md.  Only the standard library is used — no
plotting dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.exceptions import ReproError


def format_value(value: object, float_format: str = "{:.4g}") -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Format a list of dictionaries as an aligned text table."""
    if not rows:
        raise ReproError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[format_value(row.get(c, ""), float_format) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_grouped_series(
    rows: Sequence[Mapping[str, object]],
    group_key: str,
    x_key: str,
    y_key: str,
    float_format: str = "{:.4g}",
) -> str:
    """Format sweep records as one line per group: ``group: x=y, x=y, ...``.

    Mirrors how the paper's figures show one curve per configuration.
    """
    if not rows:
        raise ReproError("cannot format an empty series")
    groups: dict[str, list[tuple[object, object]]] = {}
    for row in rows:
        group = str(row[group_key])
        groups.setdefault(group, []).append((row[x_key], row[y_key]))
    lines = []
    for group in sorted(groups):
        points = ", ".join(
            f"{format_value(x, float_format)}={format_value(y, float_format)}"
            for x, y in groups[group]
        )
        lines.append(f"{group}: {points}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# structured export (JSON / CSV)
# ----------------------------------------------------------------------
def records_to_dicts(records: Sequence[Any]) -> list[dict[str, object]]:
    """Normalise records to flat dictionaries.

    Accepts plain mappings and any record type exposing ``as_dict()``
    (:class:`SweepRecord`, :class:`CompileTimeRecord`,
    :class:`ComparisonRecord`, :class:`JobOutcome`...), so every results
    family shares one export path.
    """
    rows: list[dict[str, object]] = []
    for record in records:
        if isinstance(record, Mapping):
            rows.append(dict(record))
        elif hasattr(record, "as_dict"):
            rows.append(record.as_dict())
        else:
            raise ReproError(
                f"cannot export a {type(record).__name__}: expected a mapping "
                "or an object with as_dict()"
            )
    return rows


def records_to_json(records: Sequence[Any], indent: int | None = 2) -> str:
    """Render records as a JSON array string."""
    return json.dumps(records_to_dicts(records), indent=indent, default=str)


def records_to_csv(records: Sequence[Any], columns: Sequence[str] | None = None) -> str:
    """Render records as CSV text (header row included)."""
    rows = records_to_dicts(records)
    if not rows:
        raise ReproError("cannot export an empty record list to CSV")
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=list(columns), extrasaction="ignore", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        # Raw values, not format_value: exports must keep full precision
        # (the 4-significant-digit rendering is for display tables only).
        writer.writerow({c: row.get(c, "") for c in columns})
    return buffer.getvalue()


def write_records(
    records: Sequence[Any], path: "Path | str", fmt: str | None = None
) -> Path:
    """Write records to ``path`` as JSON or CSV.

    ``fmt`` is ``"json"`` or ``"csv"``; when omitted it is inferred from
    the file suffix (defaulting to JSON).  Returns the written path.
    """
    path = Path(path)
    if fmt is None:
        fmt = "csv" if path.suffix.lower() == ".csv" else "json"
    fmt = fmt.lower()
    if fmt == "json":
        text = records_to_json(records)
    elif fmt == "csv":
        text = records_to_csv(records)
    else:
        raise ReproError(f"unknown export format {fmt!r}; expected 'json' or 'csv'")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for headline ratios)."""
    values = list(values)
    if not values:
        raise ReproError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires strictly positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def ratio_summary(ratios: Mapping[str, float], label: str) -> str:
    """One-line summary like ``shuttle reduction: QFT=3.1x, Adder=9.8x (mean 5.5x)``."""
    if not ratios:
        raise ReproError("ratio_summary needs at least one entry")
    parts = ", ".join(f"{name}={value:.2f}x" for name, value in ratios.items())
    mean = geometric_mean([v for v in ratios.values() if v > 0])
    return f"{label}: {parts} (geomean {mean:.2f}x)"
