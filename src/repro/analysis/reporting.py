"""Plain-text reporting helpers used by the benchmark harnesses.

The paper's artefacts are figures; this reproduction regenerates their
underlying data as text tables so they can be diffed, asserted on and
pasted into EXPERIMENTS.md.  Only the standard library is used — no
plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.exceptions import ReproError


def format_value(value: object, float_format: str = "{:.4g}") -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Format a list of dictionaries as an aligned text table."""
    if not rows:
        raise ReproError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[format_value(row.get(c, ""), float_format) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(columns))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(columns))))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in body:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_grouped_series(
    rows: Sequence[Mapping[str, object]],
    group_key: str,
    x_key: str,
    y_key: str,
    float_format: str = "{:.4g}",
) -> str:
    """Format sweep records as one line per group: ``group: x=y, x=y, ...``.

    Mirrors how the paper's figures show one curve per configuration.
    """
    if not rows:
        raise ReproError("cannot format an empty series")
    groups: dict[str, list[tuple[object, object]]] = {}
    for row in rows:
        group = str(row[group_key])
        groups.setdefault(group, []).append((row[x_key], row[y_key]))
    lines = []
    for group in sorted(groups):
        points = ", ".join(
            f"{format_value(x, float_format)}={format_value(y, float_format)}"
            for x, y in groups[group]
        )
        lines.append(f"{group}: {points}")
    return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (used for headline ratios)."""
    values = list(values)
    if not values:
        raise ReproError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires strictly positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def ratio_summary(ratios: Mapping[str, float], label: str) -> str:
    """One-line summary like ``shuttle reduction: QFT=3.1x, Adder=9.8x (mean 5.5x)``."""
    if not ratios:
        raise ReproError("ratio_summary needs at least one entry")
    parts = ", ".join(f"{name}={value:.2f}x" for name, value in ratios.items())
    mean = geometric_mean([v for v in ratios.values() if v > 0])
    return f"{label}: {parts} (geomean {mean:.2f}x)"
