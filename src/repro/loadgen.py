"""A reproducible load generator for the compilation service.

``repro loadgen`` (and :func:`run_profile` under it) drives a running
service with one of three synthetic workload profiles and reports
latency percentiles and throughput — the numbers behind
``benchmarks/bench_service_throughput.py`` and CI's loadgen smoke job:

``burst``
    Every request carries a distinct single-job manifest, all submitted
    as fast as the concurrency limit allows.  Exercises the scheduler
    queue and the compile path with no help from request idempotency.

``duplicates``
    Requests draw from a small pool of identical manifests, so most
    submissions are byte-for-byte resubmissions of an earlier job.
    Exercises the fingerprint-derived idempotency path and the schedule
    cache: after the pool has been compiled once, the service should
    answer from state it already has.

``priorities``
    Distinct manifests, but ~20% of requests are submitted at high
    priority into a queue full of normal ones.  Exercises priority
    ordering under contention; compare the per-priority queue-latency
    histograms on ``/v1/metrics`` after a run.

``results``
    A small pool of distinct manifests is submitted and drained once,
    untimed; the timed phase then re-fetches the finished jobs' result
    streams round-robin.  Exercises the zero-re-serialization streaming
    path: every line the server writes comes from its pre-encoded
    buffers, so this profile measures pure result delivery with no
    compilation or JSON encoding in the loop.

Reproducibility: the request plan is a pure function of ``(profile,
requests, seed)`` — :func:`generate_requests` uses its own seeded
:class:`random.Random` and nothing else, so two runs against equivalent
services submit the identical byte sequences in the same order.
Everything is standard library, like the service itself.
"""

from __future__ import annotations

import json
import math
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.exceptions import ReproError
from repro.service.client import ServiceClient

#: The workload profiles ``repro loadgen --profile`` accepts.
PROFILES = ("burst", "duplicates", "priorities", "results")

#: Circuit families and the (small) size range synthetic jobs draw from.
#: Sizes are kept low so a loadgen run measures the *service* — queueing,
#: dedup, caching, streaming — rather than minutes of compilation.
_FAMILIES = ("qft", "bv", "qaoa")
_SIZES = (4, 5, 6)

#: Device every synthetic job targets (the smallest grid preset).
_DEVICE = "G-2x2"

#: Fraction of high-priority submissions in the ``priorities`` profile.
_HIGH_PRIORITY_FRACTION = 0.2
_HIGH_PRIORITY = 5

#: Pool size for the ``duplicates`` profile: ``requests`` submissions
#: cycle over this many distinct manifests.
_DUPLICATE_POOL = 4

#: Pool size for the ``results`` profile: this many jobs are submitted
#: and drained untimed, then ``requests`` timed re-fetches cycle over
#: their finished result streams.
_RESULTS_POOL = 4


@dataclass(frozen=True)
class LoadRequest:
    """One planned submission: a manifest body and its priority."""

    index: int
    body: bytes
    priority: int


@dataclass
class RequestRecord:
    """What one submission measured."""

    index: int
    job_id: str
    priority: int
    resubmitted: bool
    status: str
    outcomes: int
    submit_s: float  #: POST round-trip
    total_s: float  #: POST to end of the result stream
    error: "str | None" = None


@dataclass
class LoadgenResult:
    """Aggregated outcome of one profile run (see :meth:`as_dict`)."""

    profile: str
    requests: int
    seed: int
    concurrency: int
    wall_s: float
    records: list[RequestRecord] = field(default_factory=list)
    #: Fresh TCP connections the pooled client opened over the whole run.
    #: With keep-alive this stays near ``concurrency`` regardless of
    #: ``requests`` — the delta vs. one-connection-per-request transport.
    connections_opened: int = 0

    @property
    def ok(self) -> bool:
        return all(r.error is None and r.status == "done" for r in self.records)

    def latencies(self) -> list[float]:
        return [r.total_s for r in self.records if r.error is None]

    def as_dict(self) -> dict[str, Any]:
        """The JSON document the benchmark harness stores."""
        latencies = self.latencies()
        statuses: dict[str, int] = {}
        for record in self.records:
            key = record.status if record.error is None else "error"
            statuses[key] = statuses.get(key, 0) + 1
        return {
            "profile": self.profile,
            "requests": self.requests,
            "seed": self.seed,
            "concurrency": self.concurrency,
            "wall_s": self.wall_s,
            "throughput_rps": (
                len(latencies) / self.wall_s if self.wall_s > 0 else 0.0
            ),
            "statuses": statuses,
            "resubmitted": sum(1 for r in self.records if r.resubmitted),
            "connections_opened": self.connections_opened,
            "latency_s": {
                "p50": percentile(latencies, 50.0),
                "p95": percentile(latencies, 95.0),
                "p99": percentile(latencies, 99.0),
                "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
                "max": max(latencies) if latencies else 0.0,
            },
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0–100); 0.0 on empty input.

    Nearest-rank (not interpolated) so the reported p99 is a latency
    that actually happened.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ReproError(f"percentile {q!r} is not in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _manifest(rng: random.Random, label: str) -> bytes:
    family = rng.choice(_FAMILIES)
    size = rng.choice(_SIZES)
    document = {
        "defaults": {"device": _DEVICE, "capacity": 8},
        "jobs": [{"circuit": f"{family}_{size}", "label": label}],
    }
    return json.dumps(document, sort_keys=True).encode("utf-8")


def generate_requests(
    profile: str, requests: int, seed: int = 0
) -> list[LoadRequest]:
    """The deterministic request plan for one run.

    Labels carry the request index (except in ``duplicates``, where
    sharing labels is the point): the service derives job ids from
    fingerprints *and* labels, so distinct labels force distinct jobs
    even when two requests drew the same circuit — while the underlying
    compilations still share the schedule cache.
    """
    if profile not in PROFILES:
        raise ReproError(
            f"unknown load profile {profile!r} (choose from {', '.join(PROFILES)})"
        )
    if requests < 1:
        raise ReproError("a load run needs at least one request")
    rng = random.Random(seed)
    plan: list[LoadRequest] = []
    if profile == "results":
        # The plan is the warm-up pool: the timed phase re-fetches these
        # jobs' result streams and submits nothing of its own.
        return [
            LoadRequest(i, _manifest(rng, f"res-{i}"), 0)
            for i in range(min(_RESULTS_POOL, requests))
        ]
    if profile == "duplicates":
        pool = [
            _manifest(rng, f"dup-{i}") for i in range(min(_DUPLICATE_POOL, requests))
        ]
        for index in range(requests):
            plan.append(LoadRequest(index, rng.choice(pool), 0))
        return plan
    for index in range(requests):
        body = _manifest(rng, f"req-{index}")
        priority = 0
        if profile == "priorities" and rng.random() < _HIGH_PRIORITY_FRACTION:
            priority = _HIGH_PRIORITY
        plan.append(LoadRequest(index, body, priority))
    return plan


def _drive_one(client: ServiceClient, request: LoadRequest) -> RequestRecord:
    """Submit one request and drain its result stream, timing both."""
    started = time.perf_counter()
    try:
        receipt = client.submit(request.body, priority=request.priority)
        submit_s = time.perf_counter() - started
        status = "unknown"
        outcomes = 0
        for line in client.stream_results(receipt["job_id"]):
            if line.get("type") == "outcome":
                outcomes += 1
            elif line.get("type") == "end":
                status = str(line.get("status", "unknown"))
        return RequestRecord(
            index=request.index,
            job_id=str(receipt["job_id"]),
            priority=request.priority,
            resubmitted=bool(receipt.get("resubmitted")),
            status=status,
            outcomes=outcomes,
            submit_s=submit_s,
            total_s=time.perf_counter() - started,
        )
    except Exception as exc:  # noqa: BLE001 - a failed request is a data point
        elapsed = time.perf_counter() - started
        return RequestRecord(
            index=request.index,
            job_id="",
            priority=request.priority,
            resubmitted=False,
            status="error",
            outcomes=0,
            submit_s=elapsed,
            total_s=elapsed,
            error=f"{type(exc).__name__}: {exc}",
        )


def _fetch_one(client: ServiceClient, index: int, job_id: str) -> RequestRecord:
    """Re-fetch one finished job's result stream, timing the drain.

    Used by the ``results`` profile: the job already ran, so the whole
    latency is result delivery — the server replays its pre-encoded
    line buffers without re-serializing a single record.
    """
    started = time.perf_counter()
    try:
        status = "unknown"
        outcomes = 0
        for line in client.stream_results(job_id):
            if line.get("type") == "outcome":
                outcomes += 1
            elif line.get("type") == "end":
                status = str(line.get("status", "unknown"))
        elapsed = time.perf_counter() - started
        return RequestRecord(
            index=index,
            job_id=job_id,
            priority=0,
            resubmitted=True,  # every timed fetch replays an existing job
            status=status,
            outcomes=outcomes,
            submit_s=0.0,
            total_s=elapsed,
        )
    except Exception as exc:  # noqa: BLE001 - a failed request is a data point
        elapsed = time.perf_counter() - started
        return RequestRecord(
            index=index,
            job_id=job_id,
            priority=0,
            resubmitted=True,
            status="error",
            outcomes=0,
            submit_s=0.0,
            total_s=elapsed,
            error=f"{type(exc).__name__}: {exc}",
        )


def _run_results_profile(
    client: ServiceClient,
    requests: int,
    seed: int,
    concurrency: int,
) -> LoadgenResult:
    """Warm up a job pool untimed, then time concurrent stream re-fetches."""
    pool_plan = generate_requests("results", requests, seed=seed)
    job_ids: list[str] = []
    for request in pool_plan:  # warm-up: submit and drain, untimed
        receipt = client.submit(request.body, priority=0)
        job_id = str(receipt["job_id"])
        for _ in client.stream_results(job_id):
            pass
        job_ids.append(job_id)
    fetches = [(index, job_ids[index % len(job_ids)]) for index in range(requests)]
    started = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=min(concurrency, len(fetches)),
        thread_name_prefix="repro-loadgen",
    ) as pool:
        records = list(
            pool.map(lambda item: _fetch_one(client, item[0], item[1]), fetches)
        )
    wall_s = time.perf_counter() - started
    return LoadgenResult(
        profile="results",
        requests=requests,
        seed=seed,
        concurrency=concurrency,
        wall_s=wall_s,
        records=records,
        connections_opened=client.connections_opened,
    )


def run_profile(
    url: str,
    profile: str,
    requests: int = 20,
    seed: int = 0,
    concurrency: int = 4,
    timeout: float = 300.0,
) -> LoadgenResult:
    """Run one profile against the service at ``url`` and aggregate.

    ``concurrency`` client threads share the plan; each submits its
    request and drains the result stream before taking the next, so at
    most ``concurrency`` jobs are in flight client-side at any moment.
    The ``results`` profile times re-fetches instead of submissions (its
    warm-up submissions are excluded from ``wall_s`` and the latency
    percentiles).
    """
    if concurrency < 1:
        raise ReproError("loadgen needs at least one client thread")
    client = ServiceClient(url, timeout=timeout)
    if profile == "results":
        if requests < 1:
            raise ReproError("a load run needs at least one request")
        return _run_results_profile(client, requests, seed, concurrency)
    plan = generate_requests(profile, requests, seed=seed)
    started = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=min(concurrency, len(plan)), thread_name_prefix="repro-loadgen"
    ) as pool:
        records = list(pool.map(lambda req: _drive_one(client, req), plan))
    wall_s = time.perf_counter() - started
    return LoadgenResult(
        profile=profile,
        requests=requests,
        seed=seed,
        concurrency=concurrency,
        wall_s=wall_s,
        records=records,
        connections_opened=client.connections_opened,
    )
