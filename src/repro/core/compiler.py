"""The S-SYNC compiler facade — the library's primary public entry point.

Typical use::

    from repro import SSyncCompiler, paper_device, qft_circuit

    device = paper_device("G-2x3")
    compiler = SSyncCompiler(device)
    result = compiler.compile(qft_circuit(16), initial_mapping="gathering")
    print(result.shuttle_count, result.swap_count)

The compiler is a thin assembly over the pass pipeline
(:mod:`repro.pipeline`): an
:class:`~repro.pipeline.InitialMappingPass` carrying the config's
mapping knobs (§3.4), a :class:`~repro.pipeline.SchedulingPass` wrapping
the generic-swap scheduler (§3.2–3.3) and a
:class:`~repro.pipeline.MetricsPass`.  The pipeline measures per-pass
wall time and assembles the result.  Evaluation (success rate, execution
time) is a separate step via :func:`repro.noise.evaluate_schedule`, so
one compiled schedule can be scored under several gate implementations
or heating assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping import InitialMapper, get_mapper
from repro.core.result import CompilationResult
from repro.core.scheduler import GenericSwapScheduler, SchedulerConfig
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.hardware.graph import GraphWeights
from repro.pipeline import CompilerPipeline, InitialMappingPass, MetricsPass, SchedulingPass


@dataclass(frozen=True)
class SSyncConfig:
    """Complete S-SYNC configuration: scheduler knobs plus mapping defaults."""

    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    default_mapping: str = "gathering"
    mapping_reserve_per_trap: int = 1
    mapping_lookahead_layers: int = 8

    def with_weight_ratio(self, ratio: float) -> "SSyncConfig":
        """Return a config whose shuttle/inner weight ratio is ``ratio`` (Fig. 14)."""
        new_weights = self.scheduler.weights.with_ratio(ratio)
        return replace(self, scheduler=replace(self.scheduler, weights=new_weights))

    def with_decay(self, delta: float) -> "SSyncConfig":
        """Return a config with a different decay δ (Fig. 14)."""
        return replace(self, scheduler=replace(self.scheduler, decay_delta=delta))

    def with_weights(self, weights: GraphWeights) -> "SSyncConfig":
        """Return a config with explicit graph weights."""
        return replace(self, scheduler=replace(self.scheduler, weights=weights))


class SSyncCompiler:
    """Shuttle/SWAP co-optimizing compiler for QCCD devices."""

    name = "s-sync"

    def __init__(self, device: QCCDDevice, config: SSyncConfig | None = None) -> None:
        self.device = device
        self.config = config or SSyncConfig()
        self._scheduler = GenericSwapScheduler(device, self.config.scheduler)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def pipeline(self) -> CompilerPipeline:
        """The pass pipeline this compiler assembles.

        Mapping resolution, routing and metrics — callers can extend it
        (e.g. ``.with_verification()``) before compiling.
        """
        return CompilerPipeline(
            self.name,
            self.device,
            (
                InitialMappingPass(self._resolve_mapper),
                SchedulingPass(self._scheduler),
                MetricsPass(),
            ),
        )

    def build_initial_state(
        self, circuit: QuantumCircuit, initial_mapping: "str | InitialMapper | None" = None
    ) -> DeviceState:
        """Run only the initial-mapping stage and return the starting occupancy."""
        mapper = self._resolve_mapper(initial_mapping)
        return mapper.map(circuit, self.device)

    def compile(
        self,
        circuit: QuantumCircuit,
        initial_mapping: "str | InitialMapper | None" = None,
        initial_state: DeviceState | None = None,
    ) -> CompilationResult:
        """Compile ``circuit`` onto this compiler's device.

        Parameters
        ----------
        circuit:
            The program to schedule.
        initial_mapping:
            First-level mapping strategy name (``"gathering"``,
            ``"even-divided"``, ``"sta"``) or an :class:`InitialMapper`
            instance.
        initial_state:
            A pre-built starting occupancy (e.g. to chain circuits or to
            study hand-crafted placements).  Supplying both arguments is
            contradictory: the state wins, a :class:`UserWarning` is
            emitted, and the result records the named mapping it was
            asked for rather than silently reporting ``"custom"``.
        """
        return self.pipeline().compile(
            circuit, initial_mapping=initial_mapping, initial_state=initial_state
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_mapper(self, initial_mapping: "str | InitialMapper | None") -> InitialMapper:
        if isinstance(initial_mapping, InitialMapper):
            return initial_mapping
        name = initial_mapping or self.config.default_mapping
        try:
            return get_mapper(
                name,
                reserve_per_trap=self.config.mapping_reserve_per_trap,
                intra_trap_lookahead=self.config.mapping_lookahead_layers,
            )
        except TypeError as exc:  # pragma: no cover - defensive
            raise SchedulingError(f"could not instantiate mapper {name!r}") from exc


def compile_circuit(
    circuit: QuantumCircuit,
    device: QCCDDevice,
    initial_mapping: str = "gathering",
    config: SSyncConfig | None = None,
) -> CompilationResult:
    """One-call convenience wrapper: build the compiler and compile."""
    return SSyncCompiler(device, config).compile(circuit, initial_mapping=initial_mapping)
