"""Mutable device occupancy state used during scheduling.

Each trap holds an ordered *chain* of program qubits (at most
``capacity`` of them).  Ions keep their chain order unless an explicit
SWAP gate exchanges two of them; they may only leave the chain from one
of its two ends (Observation 2 of the paper) and an incoming ion merges
at the end facing the connection it arrived through.

The chain end facing a neighbouring trap follows the same orientation
convention as :class:`repro.hardware.graph.SlotGraph`: the *right* end
(last chain index) faces neighbours with a larger trap id, the *left*
end (index 0) faces neighbours with a smaller id.

The state is the scheduler's innermost data structure, so it maintains
three derived indices incrementally instead of recomputing them per
query: a qubit → chain-index table (``position``/``ion_separation``/
``distance_to_end`` are O(1)), a per-trap capacity snapshot, and a
count of completely full traps (the Pen term of Eq. 2, O(1) via
:meth:`full_trap_count`).  Mutations keep all three in sync; the
unchecked fast paths (:meth:`unchecked_swap`, :meth:`unchecked_shuttle`)
skip the legality checks for callers that apply *known-legal* moves —
the incremental scorer applies and reverts every candidate on the live
state instead of copying it.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import StateError
from repro.hardware.device import QCCDDevice

#: Symbolic ends of a trap's ion chain.
LEFT = "left"
RIGHT = "right"


class DeviceState:
    """Occupancy of a QCCD device: which qubit sits where in which trap."""

    __slots__ = (
        "device",
        "_chains",
        "_locations",
        "_positions",
        "_capacities",
        "_full_traps",
        "chains",
        "locations",
        "positions",
        "capacities",
    )

    def __init__(self, device: QCCDDevice) -> None:
        self.device = device
        self._chains: dict[int, list[int]] = {trap.trap_id: [] for trap in device.traps}
        self._locations: dict[int, int] = {}
        self._positions: dict[int, int] = {}
        self._capacities: dict[int, int] = {
            trap.trap_id: trap.capacity for trap in device.traps
        }
        self._full_traps = sum(1 for cap in self._capacities.values() if cap == 0)
        self._bind_views()

    def _bind_views(self) -> None:
        """Re-export the working dicts as read-only hot-path views.

        Plain attribute aliases rather than properties: the scheduler
        reads them millions of times.  Callers must never mutate them —
        use :meth:`chain`/:meth:`occupancy` for snapshots.
        """
        #: Live qubit -> trap mapping (read-only view).
        self.locations: Mapping[int, int] = self._locations
        #: Live qubit -> chain-index mapping (read-only view).
        self.positions: Mapping[int, int] = self._positions
        #: Live trap -> chain mapping (read-only view).
        self.chains: Mapping[int, list[int]] = self._chains
        #: Trap -> capacity snapshot (read-only view).
        self.capacities: Mapping[int, int] = self._capacities

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, device: QCCDDevice, trap_assignment: Mapping[int, Iterable[int]]) -> "DeviceState":
        """Build a state from a trap → ordered-qubit-list assignment."""
        state = cls(device)
        for trap_id, qubits in trap_assignment.items():
            for qubit in qubits:
                state.place(qubit, trap_id)
        return state

    def place(self, qubit: int, trap_id: int, end: str = RIGHT) -> None:
        """Append ``qubit`` to a trap's chain (used while building mappings)."""
        self._require_trap(trap_id)
        if qubit in self._locations:
            raise StateError(f"qubit {qubit} is already placed")
        chain = self._chains[trap_id]
        if len(chain) >= self._capacities[trap_id]:
            raise StateError(f"trap {trap_id} is full (capacity {self._capacities[trap_id]})")
        if end == RIGHT:
            self._positions[qubit] = len(chain)
            chain.append(qubit)
        elif end == LEFT:
            for other in chain:
                self._positions[other] += 1
            self._positions[qubit] = 0
            chain.insert(0, qubit)
        else:
            raise StateError(f"unknown chain end {end!r}")
        self._locations[qubit] = trap_id
        if len(chain) == self._capacities[trap_id]:
            self._full_traps += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _require_trap(self, trap_id: int) -> None:
        if trap_id not in self._chains:
            raise StateError(f"unknown trap id {trap_id}")

    def trap_of(self, qubit: int) -> int:
        """The trap currently holding ``qubit``."""
        try:
            return self._locations[qubit]
        except KeyError as exc:
            raise StateError(f"qubit {qubit} has not been placed on the device") from exc

    def is_placed(self, qubit: int) -> bool:
        """True when the qubit has a location."""
        return qubit in self._locations

    def chain(self, trap_id: int) -> tuple[int, ...]:
        """The ordered ion chain of one trap."""
        self._require_trap(trap_id)
        return tuple(self._chains[trap_id])

    def chain_length(self, trap_id: int) -> int:
        """Number of ions currently in one trap."""
        self._require_trap(trap_id)
        return len(self._chains[trap_id])

    def free_slots(self, trap_id: int) -> int:
        """Remaining capacity of one trap."""
        self._require_trap(trap_id)
        return self._capacities[trap_id] - len(self._chains[trap_id])

    def has_space(self, trap_id: int) -> bool:
        """True when the trap can accept another ion."""
        try:
            return len(self._chains[trap_id]) < self._capacities[trap_id]
        except KeyError:
            raise StateError(f"unknown trap id {trap_id}") from None

    def full_trap_count(self) -> int:
        """Number of traps with no free slot (the Pen term of Eq. 2).

        Maintained incrementally by every mutation, so this is O(1)
        rather than a recount over all traps.
        """
        return self._full_traps

    def position(self, qubit: int) -> int:
        """Index of ``qubit`` within its trap's chain."""
        self.trap_of(qubit)
        return self._positions[qubit]

    def ion_separation(self, qubit_a: int, qubit_b: int) -> int:
        """Number of ions strictly between two qubits in the same chain."""
        trap_a = self.trap_of(qubit_a)
        trap_b = self.trap_of(qubit_b)
        if trap_a != trap_b:
            raise StateError(
                f"qubits {qubit_a} and {qubit_b} are in different traps ({trap_a} vs {trap_b})"
            )
        distance = self._positions[qubit_a] - self._positions[qubit_b]
        if distance < 0:
            distance = -distance
        return distance - 1 if distance > 1 else 0

    def same_trap(self, qubit_a: int, qubit_b: int) -> bool:
        """True when both qubits currently share a trap."""
        return self.trap_of(qubit_a) == self.trap_of(qubit_b)

    # ------------------------------------------------------------------
    # chain-end geometry
    # ------------------------------------------------------------------
    def facing_end(self, trap_id: int, neighbour_trap: int) -> str:
        """Which chain end of ``trap_id`` faces ``neighbour_trap``."""
        self._require_trap(trap_id)
        self._require_trap(neighbour_trap)
        if trap_id == neighbour_trap:
            raise StateError("a trap does not face itself")
        return RIGHT if neighbour_trap > trap_id else LEFT

    def end_qubit(self, trap_id: int, end: str) -> int | None:
        """The qubit at one end of a trap's chain (``None`` if empty)."""
        chain = self._chains[trap_id]
        if not chain:
            return None
        if end == RIGHT:
            return chain[-1]
        if end == LEFT:
            return chain[0]
        raise StateError(f"unknown chain end {end!r}")

    def is_at_end(self, qubit: int, end: str | None = None) -> bool:
        """True when the qubit sits at a chain end (optionally a specific one)."""
        trap_id = self.trap_of(qubit)
        index = self._positions[qubit]
        at_left = index == 0
        at_right = index == len(self._chains[trap_id]) - 1
        if end is None:
            return at_left or at_right
        if end == LEFT:
            return at_left
        if end == RIGHT:
            return at_right
        raise StateError(f"unknown chain end {end!r}")

    def distance_to_end(self, qubit: int, end: str) -> int:
        """Number of ions between the qubit and the given chain end."""
        trap_id = self.trap_of(qubit)
        index = self._positions[qubit]
        if end == LEFT:
            return index
        if end == RIGHT:
            return len(self._chains[trap_id]) - 1 - index
        raise StateError(f"unknown chain end {end!r}")

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def swap_qubits(self, qubit_a: int, qubit_b: int) -> None:
        """Exchange the chain positions of two qubits in the same trap."""
        trap_a = self.trap_of(qubit_a)
        trap_b = self.trap_of(qubit_b)
        if trap_a != trap_b:
            raise StateError("SWAP gates only act within a single trap")
        if qubit_a == qubit_b:
            raise StateError("cannot SWAP a qubit with itself")
        self.unchecked_swap(qubit_a, qubit_b)

    def unchecked_swap(self, qubit_a: int, qubit_b: int) -> None:
        """SWAP fast path: the caller guarantees both qubits share a trap.

        A SWAP is its own inverse, so reverting a hypothetical SWAP is
        simply applying it again.
        """
        positions = self._positions
        i, j = positions[qubit_a], positions[qubit_b]
        positions[qubit_a], positions[qubit_b] = j, i
        chain = self._chains[self._locations[qubit_a]]
        chain[i], chain[j] = chain[j], chain[i]

    def shuttle(self, qubit: int, target_trap: int) -> None:
        """Move ``qubit`` from the end of its chain into ``target_trap``.

        The qubit must sit at the chain end facing ``target_trap`` along
        the direct connection, and the target trap must have a free
        slot.  The qubit merges at the target's end facing the source.
        """
        source_trap = self.trap_of(qubit)
        self._require_trap(target_trap)
        if source_trap == target_trap:
            raise StateError("shuttle source and target traps must differ")
        if not self.device.are_connected(source_trap, target_trap):
            raise StateError(f"traps {source_trap} and {target_trap} are not directly connected")
        if not self.has_space(target_trap):
            raise StateError(f"trap {target_trap} has no free slot for an incoming ion")
        departing_end = self.facing_end(source_trap, target_trap)
        if not self.is_at_end(qubit, departing_end):
            raise StateError(
                f"qubit {qubit} is not at the {departing_end} end of trap {source_trap}; "
                "it cannot be split from the chain"
            )
        self.unchecked_shuttle(qubit, source_trap, target_trap)

    def unchecked_shuttle(self, qubit: int, source_trap: int, target_trap: int) -> None:
        """Shuttle fast path: the caller guarantees the move is legal.

        The qubit leaves ``source_trap`` from the end facing
        ``target_trap`` and merges into ``target_trap`` at the end facing
        ``source_trap``.  Because both ends face each other, a shuttle is
        its own inverse: ``unchecked_shuttle(q, target, source)`` exactly
        restores the previous chains, positions and fullness counters.
        """
        chains = self._chains
        positions = self._positions
        source_chain = chains[source_trap]
        if len(source_chain) == self._capacities[source_trap]:
            self._full_traps -= 1
        # Leave from the end facing the target (right = larger trap id).
        if target_trap > source_trap:
            source_chain.pop()
        else:
            source_chain.pop(0)
            for other in source_chain:
                positions[other] -= 1
        target_chain = chains[target_trap]
        # Merge at the target's end facing the source.
        if source_trap > target_trap:
            positions[qubit] = len(target_chain)
            target_chain.append(qubit)
        else:
            for other in target_chain:
                positions[other] += 1
            positions[qubit] = 0
            target_chain.insert(0, qubit)
        self._locations[qubit] = target_trap
        if len(target_chain) == self._capacities[target_trap]:
            self._full_traps += 1

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def occupancy(self) -> dict[int, tuple[int, ...]]:
        """A snapshot of every trap's chain."""
        return {trap_id: tuple(chain) for trap_id, chain in self._chains.items()}

    def flat_snapshot(self) -> tuple[list[list[int]], list[int], int]:
        """Chains and capacities in trap-id order plus the qubit-id bound.

        Export used to seed the flat-array mirror
        (:class:`repro.core.flatstate.FlatState`): trap ids are dense
        (``0..num_traps-1``), so positional lists are enough, and the
        bound is one past the largest placed qubit id (qubit ids index
        the mirror's position/location vectors).
        """
        num_traps = self.device.num_traps
        chains = [list(self._chains[trap_id]) for trap_id in range(num_traps)]
        capacities = [self._capacities[trap_id] for trap_id in range(num_traps)]
        qubit_bound = max(self._locations, default=-1) + 1
        return chains, capacities, qubit_bound

    def all_qubits(self) -> set[int]:
        """All placed program qubits."""
        return set(self._locations)

    def copy(self) -> "DeviceState":
        """An independent copy of this state."""
        clone = DeviceState(self.device)
        clone._chains = {trap_id: list(chain) for trap_id, chain in self._chains.items()}
        clone._locations = dict(self._locations)
        clone._positions = dict(self._positions)
        clone._full_traps = self._full_traps
        clone._bind_views()
        return clone

    def validate(self) -> None:
        """Check internal consistency (chains, locations, derived indices)."""
        seen: set[int] = set()
        full = 0
        for trap_id, chain in self._chains.items():
            if len(chain) > self._capacities[trap_id]:
                raise StateError(f"trap {trap_id} exceeds its capacity")
            if len(chain) == self._capacities[trap_id]:
                full += 1
            for index, qubit in enumerate(chain):
                if qubit in seen:
                    raise StateError(f"qubit {qubit} appears in more than one trap")
                seen.add(qubit)
                if self._locations.get(qubit) != trap_id:
                    raise StateError(f"location table disagrees with chain for qubit {qubit}")
                if self._positions.get(qubit) != index:
                    raise StateError(f"position index disagrees with chain for qubit {qubit}")
        if seen != set(self._locations):
            raise StateError("location table and chains disagree on the set of placed qubits")
        if full != self._full_traps:
            raise StateError(
                f"full-trap counter ({self._full_traps}) disagrees with a recount ({full})"
            )

    def __repr__(self) -> str:
        occupancy = ", ".join(
            f"{trap_id}:{list(chain)}" for trap_id, chain in sorted(self._chains.items())
        )
        return f"DeviceState({occupancy})"
