"""Mutable device occupancy state used during scheduling.

Each trap holds an ordered *chain* of program qubits (at most
``capacity`` of them).  Ions keep their chain order unless an explicit
SWAP gate exchanges two of them; they may only leave the chain from one
of its two ends (Observation 2 of the paper) and an incoming ion merges
at the end facing the connection it arrived through.

The chain end facing a neighbouring trap follows the same orientation
convention as :class:`repro.hardware.graph.SlotGraph`: the *right* end
(last chain index) faces neighbours with a larger trap id, the *left*
end (index 0) faces neighbours with a smaller id.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import StateError
from repro.hardware.device import QCCDDevice

#: Symbolic ends of a trap's ion chain.
LEFT = "left"
RIGHT = "right"


class DeviceState:
    """Occupancy of a QCCD device: which qubit sits where in which trap."""

    def __init__(self, device: QCCDDevice) -> None:
        self.device = device
        self._chains: dict[int, list[int]] = {trap.trap_id: [] for trap in device.traps}
        self._locations: dict[int, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, device: QCCDDevice, trap_assignment: Mapping[int, Iterable[int]]) -> "DeviceState":
        """Build a state from a trap → ordered-qubit-list assignment."""
        state = cls(device)
        for trap_id, qubits in trap_assignment.items():
            for qubit in qubits:
                state.place(qubit, trap_id)
        return state

    def place(self, qubit: int, trap_id: int, end: str = RIGHT) -> None:
        """Append ``qubit`` to a trap's chain (used while building mappings)."""
        self._require_trap(trap_id)
        if qubit in self._locations:
            raise StateError(f"qubit {qubit} is already placed")
        chain = self._chains[trap_id]
        if len(chain) >= self.device.capacity(trap_id):
            raise StateError(f"trap {trap_id} is full (capacity {self.device.capacity(trap_id)})")
        if end == RIGHT:
            chain.append(qubit)
        elif end == LEFT:
            chain.insert(0, qubit)
        else:
            raise StateError(f"unknown chain end {end!r}")
        self._locations[qubit] = trap_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _require_trap(self, trap_id: int) -> None:
        if trap_id not in self._chains:
            raise StateError(f"unknown trap id {trap_id}")

    def trap_of(self, qubit: int) -> int:
        """The trap currently holding ``qubit``."""
        try:
            return self._locations[qubit]
        except KeyError as exc:
            raise StateError(f"qubit {qubit} has not been placed on the device") from exc

    def is_placed(self, qubit: int) -> bool:
        """True when the qubit has a location."""
        return qubit in self._locations

    def chain(self, trap_id: int) -> tuple[int, ...]:
        """The ordered ion chain of one trap."""
        self._require_trap(trap_id)
        return tuple(self._chains[trap_id])

    def chain_length(self, trap_id: int) -> int:
        """Number of ions currently in one trap."""
        self._require_trap(trap_id)
        return len(self._chains[trap_id])

    def free_slots(self, trap_id: int) -> int:
        """Remaining capacity of one trap."""
        return self.device.capacity(trap_id) - self.chain_length(trap_id)

    def has_space(self, trap_id: int) -> bool:
        """True when the trap can accept another ion."""
        return self.free_slots(trap_id) > 0

    def full_trap_count(self) -> int:
        """Number of traps with no free slot (the Pen term of Eq. 2)."""
        return sum(1 for trap_id in self._chains if not self.has_space(trap_id))

    def position(self, qubit: int) -> int:
        """Index of ``qubit`` within its trap's chain."""
        trap_id = self.trap_of(qubit)
        return self._chains[trap_id].index(qubit)

    def ion_separation(self, qubit_a: int, qubit_b: int) -> int:
        """Number of ions strictly between two qubits in the same chain."""
        trap_a = self.trap_of(qubit_a)
        trap_b = self.trap_of(qubit_b)
        if trap_a != trap_b:
            raise StateError(
                f"qubits {qubit_a} and {qubit_b} are in different traps ({trap_a} vs {trap_b})"
            )
        chain = self._chains[trap_a]
        distance = abs(chain.index(qubit_a) - chain.index(qubit_b))
        return max(distance - 1, 0)

    def same_trap(self, qubit_a: int, qubit_b: int) -> bool:
        """True when both qubits currently share a trap."""
        return self.trap_of(qubit_a) == self.trap_of(qubit_b)

    # ------------------------------------------------------------------
    # chain-end geometry
    # ------------------------------------------------------------------
    def facing_end(self, trap_id: int, neighbour_trap: int) -> str:
        """Which chain end of ``trap_id`` faces ``neighbour_trap``."""
        self._require_trap(trap_id)
        self._require_trap(neighbour_trap)
        if trap_id == neighbour_trap:
            raise StateError("a trap does not face itself")
        return RIGHT if neighbour_trap > trap_id else LEFT

    def end_qubit(self, trap_id: int, end: str) -> int | None:
        """The qubit at one end of a trap's chain (``None`` if empty)."""
        chain = self._chains[trap_id]
        if not chain:
            return None
        if end == RIGHT:
            return chain[-1]
        if end == LEFT:
            return chain[0]
        raise StateError(f"unknown chain end {end!r}")

    def is_at_end(self, qubit: int, end: str | None = None) -> bool:
        """True when the qubit sits at a chain end (optionally a specific one)."""
        trap_id = self.trap_of(qubit)
        chain = self._chains[trap_id]
        index = chain.index(qubit)
        at_left = index == 0
        at_right = index == len(chain) - 1
        if end is None:
            return at_left or at_right
        if end == LEFT:
            return at_left
        if end == RIGHT:
            return at_right
        raise StateError(f"unknown chain end {end!r}")

    def distance_to_end(self, qubit: int, end: str) -> int:
        """Number of ions between the qubit and the given chain end."""
        trap_id = self.trap_of(qubit)
        chain = self._chains[trap_id]
        index = chain.index(qubit)
        if end == LEFT:
            return index
        if end == RIGHT:
            return len(chain) - 1 - index
        raise StateError(f"unknown chain end {end!r}")

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def swap_qubits(self, qubit_a: int, qubit_b: int) -> None:
        """Exchange the chain positions of two qubits in the same trap."""
        trap_a = self.trap_of(qubit_a)
        trap_b = self.trap_of(qubit_b)
        if trap_a != trap_b:
            raise StateError("SWAP gates only act within a single trap")
        if qubit_a == qubit_b:
            raise StateError("cannot SWAP a qubit with itself")
        chain = self._chains[trap_a]
        i, j = chain.index(qubit_a), chain.index(qubit_b)
        chain[i], chain[j] = chain[j], chain[i]

    def shuttle(self, qubit: int, target_trap: int) -> None:
        """Move ``qubit`` from the end of its chain into ``target_trap``.

        The qubit must sit at the chain end facing ``target_trap`` along
        the direct connection, and the target trap must have a free
        slot.  The qubit merges at the target's end facing the source.
        """
        source_trap = self.trap_of(qubit)
        self._require_trap(target_trap)
        if source_trap == target_trap:
            raise StateError("shuttle source and target traps must differ")
        if not self.device.are_connected(source_trap, target_trap):
            raise StateError(f"traps {source_trap} and {target_trap} are not directly connected")
        if not self.has_space(target_trap):
            raise StateError(f"trap {target_trap} has no free slot for an incoming ion")
        departing_end = self.facing_end(source_trap, target_trap)
        if not self.is_at_end(qubit, departing_end):
            raise StateError(
                f"qubit {qubit} is not at the {departing_end} end of trap {source_trap}; "
                "it cannot be split from the chain"
            )
        chain = self._chains[source_trap]
        chain.remove(qubit)
        arriving_end = self.facing_end(target_trap, source_trap)
        if arriving_end == RIGHT:
            self._chains[target_trap].append(qubit)
        else:
            self._chains[target_trap].insert(0, qubit)
        self._locations[qubit] = target_trap

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def occupancy(self) -> dict[int, tuple[int, ...]]:
        """A snapshot of every trap's chain."""
        return {trap_id: tuple(chain) for trap_id, chain in self._chains.items()}

    def all_qubits(self) -> set[int]:
        """All placed program qubits."""
        return set(self._locations)

    def copy(self) -> "DeviceState":
        """An independent copy of this state."""
        clone = DeviceState(self.device)
        clone._chains = {trap_id: list(chain) for trap_id, chain in self._chains.items()}
        clone._locations = dict(self._locations)
        return clone

    def validate(self) -> None:
        """Check internal consistency (every qubit in exactly one chain)."""
        seen: set[int] = set()
        for trap_id, chain in self._chains.items():
            if len(chain) > self.device.capacity(trap_id):
                raise StateError(f"trap {trap_id} exceeds its capacity")
            for qubit in chain:
                if qubit in seen:
                    raise StateError(f"qubit {qubit} appears in more than one trap")
                seen.add(qubit)
                if self._locations.get(qubit) != trap_id:
                    raise StateError(f"location table disagrees with chain for qubit {qubit}")
        if seen != set(self._locations):
            raise StateError("location table and chains disagree on the set of placed qubits")

    def __repr__(self) -> str:
        occupancy = ", ".join(
            f"{trap_id}:{list(chain)}" for trap_id, chain in sorted(self._chains.items())
        )
        return f"DeviceState({occupancy})"
