"""Flat-array scheduler core: batched candidate scoring on integer vectors.

The incremental core (:mod:`repro.core.incremental`) removed the
per-candidate state copy; the remaining fat is *representational* —
``DeviceState`` keeps dicts of lists, candidate generation walks those
dicts, and every scored candidate still mutates and reverts the live
chains.  This module rebuilds the routing hot path on flat integer
vectors instead:

* :class:`FlatState` — a mirror of the run's working
  :class:`~repro.core.state.DeviceState` on ``array('i')`` vectors: one
  contiguous *slab* holding every trap's chain at a fixed base offset,
  chain lengths, per-qubit trap/position indices, capacities, and a
  ``bytearray`` bitset of completely full traps (the Pen term is a
  single counter read).  The mirror is advanced by
  :meth:`FlatRun.notify_applied` whenever the scheduler applies a swap
  for real, so it tracks the canonical state move-for-move.
* :class:`FlatCandidates` — candidate generation straight off the
  arrays, replaying the exact order and deduplication of
  :meth:`GenericSwapRules.candidates_for_gates` with precomputed
  per-edge shuttle weights and the fast
  :meth:`GenericSwap.unchecked` constructor.
* :class:`FlatBatchScorer` — the batched scorer: one ``select`` call
  evaluates **all** candidates of a generic-swap iteration in a single
  pass over the arrays.  A candidate's hypothetical placement costs a
  handful of array writes (a SWAP exchanges two position entries; a
  shuttle retargets the moved ion and adjusts two chain lengths, with
  uniform chain shifts folded into the distance arithmetic instead of
  written out) — no chain mutation, no per-candidate apply/undo
  dispatch, no method calls between candidates.

Scores are **bit-for-bit identical** to the reference scorer
(:meth:`HeuristicCost.swap_score`) and the incremental scorer: the
distance arithmetic replays :func:`repro.core.incremental
.make_fast_distance` operation-for-operation on the same float inputs
(the device's dense routing tables, exported flattened by
:attr:`QCCDDevice.flat_routing_tables`), the frontier minimum is read
off per-decay-class ``(dis, index)`` sort order, and the lookahead term
uses the reference scorer's base-plus-deltas definition, where a gate
whose distance is unchanged contributes an exact ``0.0``.  The
randomized three-way parity suite
(``tests/core/test_incremental_parity.py``) asserts schedule and
statistics equality across all backends.

Downstream of scoring, the flat backend also *materialises* its output
in one pass: the scheduler emits operations straight into a columnar
:class:`~repro.schedule.operations.OperationSlab` (the same layout the
binary codec in :mod:`repro.schedule.serialize` reads and writes), so a
compiled schedule never exists as a list of per-operation objects
unless someone iterates it.  Encoding a freshly compiled schedule to
cache-entry bytes is therefore a column copy, not an object walk.
"""

from __future__ import annotations

from array import array
from bisect import insort

from repro.core.generic_swap import GenericSwap, GenericSwapKind, GenericSwapRules
from repro.core.heuristic import DecayTracker, HeuristicCost
from repro.core.state import DeviceState
from repro.hardware.device import QCCDDevice

Pair = tuple[int, int]


class FlatState:
    """Flat-array mirror of a :class:`DeviceState`.

    Layout: trap ``t``'s chain occupies ``slab[base[t] : base[t] +
    length[t]]`` (slots beyond the length are stale); ``qubit_trap`` /
    ``qubit_pos`` index by program-qubit id; ``full`` is a byte-per-trap
    occupancy bitset kept in sync with ``full_count`` (the Pen term).
    Mutation semantics mirror :meth:`DeviceState.unchecked_swap` and
    :meth:`DeviceState.unchecked_shuttle` exactly — same leaving end,
    same merge end, same position shifts.
    """

    __slots__ = (
        "num_traps",
        "base",
        "slab",
        "length",
        "capacity",
        "qubit_trap",
        "qubit_pos",
        "full",
        "full_count",
    )

    def __init__(self, state: DeviceState) -> None:
        chains, capacities, qubit_bound = state.flat_snapshot()
        num_traps = len(capacities)
        self.num_traps = num_traps
        self.capacity = array("i", capacities)
        base = array("i", [0]) * num_traps
        offset = 0
        for trap in range(num_traps):
            base[trap] = offset
            offset += capacities[trap]
        self.base = base
        slab = array("i", [-1]) * offset
        length = array("i", [0]) * num_traps
        qubit_trap = array("i", [-1]) * qubit_bound
        qubit_pos = array("i", [-1]) * qubit_bound
        full = bytearray(num_traps)
        full_count = 0
        for trap, chain in enumerate(chains):
            b0 = base[trap]
            for pos, qubit in enumerate(chain):
                slab[b0 + pos] = qubit
                qubit_trap[qubit] = trap
                qubit_pos[qubit] = pos
            length[trap] = len(chain)
            if len(chain) == capacities[trap]:
                full[trap] = 1
                full_count += 1
        self.slab = slab
        self.length = length
        self.qubit_trap = qubit_trap
        self.qubit_pos = qubit_pos
        self.full = full
        self.full_count = full_count

    # ------------------------------------------------------------------
    # mutations (mirrors of the DeviceState unchecked fast paths)
    # ------------------------------------------------------------------
    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        """Mirror of :meth:`DeviceState.unchecked_swap`."""
        qpos = self.qubit_pos
        i = qpos[qubit_a]
        j = qpos[qubit_b]
        qpos[qubit_a] = j
        qpos[qubit_b] = i
        slab = self.slab
        b0 = self.base[self.qubit_trap[qubit_a]]
        slab[b0 + i] = qubit_b
        slab[b0 + j] = qubit_a

    def apply_shuttle(self, qubit: int, source_trap: int, target_trap: int) -> None:
        """Mirror of :meth:`DeviceState.unchecked_shuttle`."""
        slab = self.slab
        base = self.base
        length = self.length
        qpos = self.qubit_pos
        full = self.full
        if full[source_trap]:
            full[source_trap] = 0
            self.full_count -= 1
        remaining = length[source_trap] - 1
        length[source_trap] = remaining
        if target_trap < source_trap:
            # The ion leaves from the left end: the remaining chain
            # shifts down one slot (right pops leave the slab in place).
            b0 = base[source_trap]
            for offset in range(b0, b0 + remaining):
                other = slab[offset + 1]
                slab[offset] = other
                qpos[other] -= 1
        lt = length[target_trap]
        b0 = base[target_trap]
        if source_trap > target_trap:
            # Merge at the right end of the target chain.
            slab[b0 + lt] = qubit
            qpos[qubit] = lt
        else:
            # Merge at the left end: pre-existing ions shift up one slot.
            for offset in range(b0 + lt, b0, -1):
                other = slab[offset - 1]
                slab[offset] = other
                qpos[other] += 1
            slab[b0] = qubit
            qpos[qubit] = 0
        length[target_trap] = lt + 1
        self.qubit_trap[qubit] = target_trap
        if lt + 1 == self.capacity[target_trap]:
            full[target_trap] = 1
            self.full_count += 1

    # ------------------------------------------------------------------
    # introspection (tests and debugging; not on the hot path)
    # ------------------------------------------------------------------
    def chain(self, trap_id: int) -> list[int]:
        """The ordered ion chain of one trap, read off the slab."""
        b0 = self.base[trap_id]
        return list(self.slab[b0 : b0 + self.length[trap_id]])

    def assert_mirrors(self, state: DeviceState) -> None:
        """Raise :class:`AssertionError` unless this mirror matches ``state``."""
        chains, capacities, _ = state.flat_snapshot()
        assert self.num_traps == len(capacities), "trap count diverged"
        assert self.full_count == state.full_trap_count(), "full-trap count diverged"
        for trap, chain in enumerate(chains):
            assert self.length[trap] == len(chain), f"trap {trap} length diverged"
            assert self.chain(trap) == chain, f"trap {trap} chain diverged"
            assert bool(self.full[trap]) == (len(chain) == capacities[trap]), (
                f"trap {trap} fullness bit diverged"
            )
            for pos, qubit in enumerate(chain):
                assert self.qubit_trap[qubit] == trap, f"qubit {qubit} trap diverged"
                assert self.qubit_pos[qubit] == pos, f"qubit {qubit} position diverged"


class FlatCandidateBatch:
    """One iteration's candidate set as a list of scalar tuples.

    Each entry is ``(qubit_a, qubit_b, trap, target_trap, weight)`` with
    ``-1`` as the "not a SWAP" / "not a shuttle" sentinel for
    ``qubit_b`` / ``target_trap`` — one tuple allocation per candidate
    instead of a :class:`GenericSwap` object; the object is materialised
    only for the single winning candidate (:meth:`build`), not for the
    ~20 losers of a typical iteration.  List order is the reference
    candidate order — index ``i`` here is candidate ``i`` of the other
    backends.
    """

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list[tuple[int, int, int, int, float]] = []

    def __len__(self) -> int:
        return len(self.items)

    def build(self, index: int) -> GenericSwap:
        """Materialise candidate ``index`` as a :class:`GenericSwap`."""
        qubit_a, qubit_b, trap, target_trap, weight = self.items[index]
        if qubit_b < 0:
            return GenericSwap.unchecked(
                GenericSwapKind.SHUTTLE, qubit_a, None, trap, target_trap, weight
            )
        return GenericSwap.unchecked(
            GenericSwapKind.SWAP_GATE, qubit_a, qubit_b, trap, None, weight
        )

    def drop_reversing(self, last: GenericSwap) -> None:
        """Remove candidates that undo ``last`` — unless all of them do.

        Replays the reference loop's filter semantics: when every
        candidate reverses the previously applied swap, the set is kept
        unchanged (the scheduler must still pick something).
        """
        items = self.items
        reversing: list[int] = []
        if last.qubit_b is None:
            last_qubit = last.qubit_a
            last_source = last.trap
            last_target = last.target_trap
            for index, (qubit_a, qubit_b, trap, target_trap, _weight) in enumerate(items):
                if (
                    qubit_b < 0
                    and qubit_a == last_qubit
                    and trap == last_target
                    and target_trap == last_source
                ):
                    reversing.append(index)
        else:
            last_a = last.qubit_a
            last_b = last.qubit_b
            for index, (qubit_a, qubit_b, _trap, _target, _weight) in enumerate(items):
                if qubit_b < 0:
                    continue
                if (qubit_a == last_a and qubit_b == last_b) or (
                    qubit_a == last_b and qubit_b == last_a
                ):
                    reversing.append(index)
        if not reversing or len(reversing) == len(items):
            return
        for index in reversed(reversing):
            del items[index]


class FlatCandidates:
    """Candidate generation over the flat arrays.

    Replays the exact candidate order and deduplication of
    :meth:`GenericSwapRules.candidates_for_gates` (so tie-breaking and
    statistics are unchanged), with the per-edge shuttle weights
    ``shuttle_weight * (1 + junctions)`` precomputed into a dense float
    matrix.  Candidates are emitted into a :class:`FlatCandidateBatch`
    of parallel scalar lists — no per-candidate object is constructed
    until the scorer has picked the winner.
    """

    __slots__ = ("_flat", "_next_hop", "_n", "_inner", "_edge_weight", "_neighbors")

    def __init__(self, flat: FlatState, device: QCCDDevice, rules: GenericSwapRules) -> None:
        self._flat = flat
        n = device.num_traps
        self._n = n
        self._next_hop = device.flat_routing_tables[1]
        self._inner = rules.weights.inner_weight
        edge_weight = array("d", [0.0]) * (n * n)
        shuttle_weight = rules.weights.shuttle_weight
        for connection in device.connections:
            weight = shuttle_weight * (1 + connection.junctions)
            edge_weight[connection.trap_a * n + connection.trap_b] = weight
            edge_weight[connection.trap_b * n + connection.trap_a] = weight
        self._edge_weight = edge_weight
        self._neighbors: tuple[tuple[int, ...], ...] = tuple(
            tuple(device.neighbors(trap)) for trap in range(n)
        )

    def candidates_for_gates(
        self, state: DeviceState, gate_qubit_pairs: list[Pair]
    ) -> FlatCandidateBatch:
        """The candidate set ``S`` of Algorithm 1, read off the arrays.

        ``state`` is accepted for signature compatibility with the other
        generators but not consulted — the flat mirror is authoritative
        (and kept identical by :meth:`FlatRun.notify_applied`).
        """
        flat = self._flat
        qtrap = flat.qubit_trap
        qpos = flat.qubit_pos
        slab = flat.slab
        base = flat.base
        length = flat.length
        caps = flat.capacity
        next_hop = self._next_hop
        n = self._n
        inner = self._inner
        edge_weight = self._edge_weight
        neighbors = self._neighbors
        seen: set[tuple[int, int, int, int]] = set()
        seen_add = seen.add
        batch = FlatCandidateBatch()
        emit = batch.items.append
        for qubit_a, qubit_b in gate_qubit_pairs:
            trap_a = qtrap[qubit_a]
            trap_b = qtrap[qubit_b]
            if trap_a == trap_b:
                continue
            for qubit, goal in ((qubit_a, trap_b), (qubit_b, trap_a)):
                source = qtrap[qubit]
                if source == goal:
                    continue
                next_trap = next_hop[source * n + goal]
                towards_right = next_trap > source
                b0 = base[source]
                chain_len = length[source]
                index = qpos[qubit]
                end_index = chain_len - 1 if towards_right else 0
                end_qubit = slab[b0 + end_index] if chain_len else -1
                if end_qubit >= 0 and end_qubit != qubit:
                    key = (0, qubit, end_qubit, source)
                    if key not in seen:
                        seen_add(key)
                        distance = end_index - index if towards_right else index
                        emit((qubit, end_qubit, source, -1, inner * distance))
                neighbour_index = index + 1 if towards_right else index - 1
                if 0 <= neighbour_index < chain_len:
                    other = slab[b0 + neighbour_index]
                    if other != qubit and other != end_qubit:
                        key = (0, qubit, other, source)
                        if key not in seen:
                            seen_add(key)
                            emit((qubit, other, source, -1, inner))
                if index == end_index:
                    if length[next_trap] < caps[next_trap]:
                        key = (1, qubit, source, next_trap)
                        if key not in seen:
                            seen_add(key)
                            emit((qubit, -1, source, next_trap, edge_weight[source * n + next_trap]))
                    else:
                        # Eviction shuttles out of the full next trap.
                        bf = base[next_trap]
                        lf = length[next_trap]
                        for neighbour in neighbors[next_trap]:
                            if length[neighbour] >= caps[neighbour] or lf == 0:
                                continue
                            victim = slab[bf + lf - 1] if neighbour > next_trap else slab[bf]
                            if victim == qubit:
                                continue
                            key = (1, victim, next_trap, neighbour)
                            if key not in seen:
                                seen_add(key)
                                emit(
                                    (
                                        victim,
                                        -1,
                                        next_trap,
                                        neighbour,
                                        edge_weight[next_trap * n + neighbour],
                                    )
                                )
        return batch


def _flat_pair_distance(
    a: int,
    b: int,
    qtrap: array,
    qpos: array,
    length: array,
    next_hop: array,
    penultimate: array,
    dist: array,
    n: int,
    inner: float,
    shuttle_w: float,
) -> float:
    """Eq. 2's ``dis`` term off the flat arrays.

    Bit-identical to :func:`repro.core.incremental.make_fast_distance`
    (same operand order, same float inputs).  Also serves as the
    hypothetical-SWAP distance: the batched scorer exchanges the two
    position entries in ``qpos`` before calling it (a SWAP changes
    nothing else the distance reads).
    """
    ta = qtrap[a]
    tb = qtrap[b]
    pa = qpos[a]
    if ta == tb:
        separation = pa - qpos[b]
        if separation < 0:
            separation = -separation
        if separation > 1:
            separation -= 1
        else:
            separation = 0
        return inner * (separation + 1)
    pb = qpos[b]
    index = ta * n + tb
    hop_a = next_hop[index]
    to_end_a = length[ta] - 1 - pa if hop_a > ta else pa
    hop_b = penultimate[index]
    to_end_b = length[tb] - 1 - pb if hop_b > tb else pb
    return inner * (to_end_a + to_end_b) + shuttle_w * dist[index]


def _flat_shuttle_distance(
    a: int,
    b: int,
    moved: int,
    source: int,
    target: int,
    src_shift: int,
    tgt_shift: int,
    qtrap: array,
    qpos: array,
    length: array,
    next_hop: array,
    penultimate: array,
    dist: array,
    n: int,
    inner: float,
    shuttle_w: float,
) -> float:
    """``dis`` under a hypothetical shuttle of ``moved`` (source → target).

    The caller has already retargeted ``moved`` in ``qtrap``/``qpos``
    and adjusted the two chain lengths; the uniform position shift a
    left pop / left merge applies to *other* ions in the source/target
    chains is folded in here instead of being written to the arrays, so
    scoring a candidate never touches unrelated entries.
    """
    ta = qtrap[a]
    tb = qtrap[b]
    pa = qpos[a]
    if a != moved:
        if ta == source:
            pa += src_shift
        elif ta == target:
            pa += tgt_shift
    pb = qpos[b]
    if b != moved:
        if tb == source:
            pb += src_shift
        elif tb == target:
            pb += tgt_shift
    if ta == tb:
        separation = pa - pb
        if separation < 0:
            separation = -separation
        if separation > 1:
            separation -= 1
        else:
            separation = 0
        return inner * (separation + 1)
    index = ta * n + tb
    hop_a = next_hop[index]
    to_end_a = length[ta] - 1 - pa if hop_a > ta else pa
    hop_b = penultimate[index]
    to_end_b = length[tb] - 1 - pb if hop_b > tb else pb
    return inner * (to_end_a + to_end_b) + shuttle_w * dist[index]


class FlatBatchScorer:
    """Batched evaluation of ``H(swap)`` (Eq. 1) over the flat arrays.

    ``begin_iteration`` carries the incremental scorer's snapshot
    discipline (rebuild on DAG revision change, otherwise patch only the
    gates recent swaps affected) and extends it with per-iteration
    *index maps*: qubit -> gate indices and, for cross-trap gates,
    trap -> (gate index, which-end-the-route-leaves-by).  :meth:`select`
    then scores **all** candidates of the iteration in one pass — per
    candidate it assembles the exact set of gates whose distance can
    change (a few map lookups plus an end-direction test), recomputes
    only those, and reads everything else from cached aggregates:

    * the frontier minimum comes from per-decay-class ``(dis, index)``
      sort order — ``(dis + Pen) * factor`` is monotone in ``dis`` for a
      fixed factor, so the first un-touched entry of each class realises
      that class's minimum;
    * the lookahead term is the reference scorer's base-plus-deltas
      form: a cached in-order base sum plus the per-gate differences of
      the touched entries, accumulated in index order (an unchanged
      entry contributes an exact ``0.0``, so the exactness of the
      touched-set filter cannot change the float).

    Hypothetical placements never mutate chains: a SWAP exchanges two
    ``qubit_pos`` entries, a shuttle retargets the moved ion and adjusts
    two chain lengths, and the uniform position shift of bystander ions
    is folded into the distance arithmetic.  Scores are bit-identical to
    :meth:`HeuristicCost.swap_score` and the incremental scorer.
    """

    __slots__ = (
        "_flat",
        "_dist",
        "_next_hop",
        "_penultimate",
        "_n",
        "_inner",
        "_shuttle",
        "_base_penalty",
        "_frontier_pairs",
        "_lookahead_pairs",
        "_lookahead_weight",
        "_frontier_dis",
        "_lookahead_dis",
        "_frontier_traps",
        "_lookahead_traps",
        "_frontier_by_qubit",
        "_lookahead_by_qubit",
        "_frontier_by_trap",
        "_lookahead_by_trap",
        "_base_future",
        "_factors",
        "_ordered_by_factor",
        "_ordered_items",
        "_revision",
        "_pending_qubits",
        "_pending_traps",
        "_groups_dirty",
    )

    def __init__(self, flat: FlatState, device: QCCDDevice, cost: HeuristicCost) -> None:
        self._flat = flat
        self._dist, self._next_hop, self._penultimate = device.flat_routing_tables
        self._n = device.num_traps
        self._inner = cost.weights.inner_weight
        self._shuttle = cost.weights.shuttle_weight
        self._base_penalty = 0.0
        self._frontier_pairs: list[Pair] = []
        self._lookahead_pairs: list[Pair] = []
        self._lookahead_weight = 0.0
        self._frontier_dis: list[float] = []
        self._lookahead_dis: list[float] = []
        self._frontier_traps: list[Pair] = []
        self._lookahead_traps: list[Pair] = []
        self._frontier_by_qubit: dict[int, list[int]] = {}
        self._lookahead_by_qubit: dict[int, list[int]] = {}
        self._frontier_by_trap: dict[int, list[tuple[int, bool]]] = {}
        self._lookahead_by_trap: dict[int, list[tuple[int, bool]]] = {}
        self._base_future: float | None = None
        self._factors: list[float] = []
        self._ordered_by_factor: dict[float, list[tuple[float, int]]] = {}
        self._ordered_items: list[tuple[float, list[tuple[float, int]]]] = []
        self._revision = -1
        self._pending_qubits: set[int] = set()
        self._pending_traps: set[int] = set()
        self._groups_dirty = True

    # ------------------------------------------------------------------
    # cache invalidation
    # ------------------------------------------------------------------
    def notify_applied(self, candidate: GenericSwap) -> None:
        """Record what an applied swap invalidates for the next iteration."""
        if candidate.qubit_b is None:
            self._pending_qubits.add(candidate.qubit_a)
            self._pending_traps.add(candidate.trap)
            self._pending_traps.add(candidate.target_trap)  # type: ignore[arg-type]
        else:
            self._pending_qubits.add(candidate.qubit_a)
            self._pending_qubits.add(candidate.qubit_b)

    # ------------------------------------------------------------------
    # per-iteration snapshot (same discipline as IncrementalSwapScorer)
    # ------------------------------------------------------------------
    def begin_iteration(
        self,
        frontier_pairs: list[Pair],
        decay: DecayTracker,
        lookahead_pairs: "list[Pair] | None",
        lookahead_weight: float,
        revision: int,
    ) -> None:
        """Prepare the snapshots for this iteration's batched ``select``."""
        if revision != self._revision:
            self._frontier_pairs = frontier_pairs
            self._lookahead_pairs = lookahead_pairs or []
            self._lookahead_weight = lookahead_weight
            self._rebuild()
            self._revision = revision
            self._pending_qubits.clear()
            self._pending_traps.clear()
        elif self._pending_qubits or self._pending_traps:
            self._patch()
        self._base_future = None
        self._base_penalty = float(self._flat.full_count)

        factors = decay.factors(self._frontier_pairs)
        if self._groups_dirty or factors != self._factors:
            self._factors = factors
            ordered: dict[float, list[tuple[float, int]]] = {}
            setdefault = ordered.setdefault
            for index, dis in enumerate(self._frontier_dis):
                setdefault(factors[index], []).append((dis, index))
            for entries in ordered.values():
                entries.sort()
            self._ordered_by_factor = ordered
            self._ordered_items = list(ordered.items())
            self._groups_dirty = False

    def _pair_distance(self, a: int, b: int) -> float:
        """Real (non-hypothetical) pair distance off the current arrays."""
        flat = self._flat
        return _flat_pair_distance(
            a,
            b,
            flat.qubit_trap,
            flat.qubit_pos,
            flat.length,
            self._next_hop,
            self._penultimate,
            self._dist,
            self._n,
            self._inner,
            self._shuttle,
        )

    def _build_trap_map(
        self, trap_pairs: list[Pair]
    ) -> dict[int, list[tuple[int, bool]]]:
        """Cross-trap gate indices keyed by operand trap, with end flags.

        The flag records whether the gate's route leaves that trap by
        its *right* end (towards larger trap ids): a shuttle only
        changes the gate's ``to-end`` distance when it departs from /
        merges at the very end the route uses, so the flag makes the
        per-candidate affected test exact instead of trap-level
        conservative.
        """
        by_trap: dict[int, list[tuple[int, bool]]] = {}
        setdefault = by_trap.setdefault
        next_hop = self._next_hop
        penultimate = self._penultimate
        n = self._n
        for index, (trap_a, trap_b) in enumerate(trap_pairs):
            if trap_a == trap_b:
                continue
            flat_index = trap_a * n + trap_b
            setdefault(trap_a, []).append((index, next_hop[flat_index] > trap_a))
            setdefault(trap_b, []).append((index, penultimate[flat_index] > trap_b))
        return by_trap

    def _rebuild(self) -> None:
        """Recompute the full per-revision snapshot (frontier changed)."""
        pair_distance = self._pair_distance
        qtrap = self._flat.qubit_trap
        self._frontier_dis = [pair_distance(a, b) for a, b in self._frontier_pairs]
        self._lookahead_dis = [pair_distance(a, b) for a, b in self._lookahead_pairs]
        self._frontier_traps = [(qtrap[a], qtrap[b]) for a, b in self._frontier_pairs]
        self._lookahead_traps = [(qtrap[a], qtrap[b]) for a, b in self._lookahead_pairs]
        frontier_by_qubit: dict[int, list[int]] = {}
        setdefault = frontier_by_qubit.setdefault
        for index, (qubit_a, qubit_b) in enumerate(self._frontier_pairs):
            setdefault(qubit_a, []).append(index)
            setdefault(qubit_b, []).append(index)
        self._frontier_by_qubit = frontier_by_qubit
        lookahead_by_qubit: dict[int, list[int]] = {}
        setdefault = lookahead_by_qubit.setdefault
        for index, (qubit_a, qubit_b) in enumerate(self._lookahead_pairs):
            setdefault(qubit_a, []).append(index)
            setdefault(qubit_b, []).append(index)
        self._lookahead_by_qubit = lookahead_by_qubit
        self._frontier_by_trap = self._build_trap_map(self._frontier_traps)
        self._lookahead_by_trap = self._build_trap_map(self._lookahead_traps)
        self._groups_dirty = True

    def _patch(self) -> None:
        """Rescore only the gates affected by recently applied swaps."""
        qubits = self._pending_qubits
        traps = self._pending_traps
        if self._patch_section(
            qubits,
            traps,
            self._frontier_pairs,
            self._frontier_dis,
            self._frontier_traps,
            self._frontier_by_qubit,
            self._frontier_by_trap,
        ):
            self._groups_dirty = True
        self._patch_section(
            qubits,
            traps,
            self._lookahead_pairs,
            self._lookahead_dis,
            self._lookahead_traps,
            self._lookahead_by_qubit,
            self._lookahead_by_trap,
        )
        qubits.clear()
        traps.clear()

    def _patch_section(
        self,
        qubits: set[int],
        traps: set[int],
        pairs: list[Pair],
        dis: list[float],
        trap_pairs: list[Pair],
        by_qubit: dict[int, list[int]],
        by_trap: dict[int, list[tuple[int, bool]]],
    ) -> bool:
        """Refresh the entries the applied swaps may have changed.

        The affected entries are read straight off the index maps (the
        moved qubits' gates plus every cross-trap gate keyed on a
        touched trap) instead of scanning the whole gate list.  The
        trap map itself is maintained in place: an applied SWAP never
        changes trap membership, and an applied shuttle re-keys only
        the entries whose gate contains the moved ion — so map surgery
        on those few entries replaces a full rebuild.
        """
        affected: list[int] = []
        extend = affected.extend
        empty: tuple = ()
        for qubit in qubits:
            extend(by_qubit.get(qubit, empty))
        for trap in traps:
            for index, _leaves_right in by_trap.get(trap, empty):
                affected.append(index)
        if not affected:
            return False
        affected.sort()
        pair_distance = self._pair_distance
        qtrap = self._flat.qubit_trap
        next_hop = self._next_hop
        penultimate = self._penultimate
        n = self._n
        previous = -1
        for index in affected:
            if index == previous:
                continue
            previous = index
            qubit_a, qubit_b = pairs[index]
            dis[index] = pair_distance(qubit_a, qubit_b)
            old_a, old_b = trap_pairs[index]
            new_a = qtrap[qubit_a]
            new_b = qtrap[qubit_b]
            if new_a != old_a or new_b != old_b:
                if old_a != old_b:
                    flat_index = old_a * n + old_b
                    by_trap[old_a].remove((index, next_hop[flat_index] > old_a))
                    by_trap[old_b].remove((index, penultimate[flat_index] > old_b))
                if new_a != new_b:
                    flat_index = new_a * n + new_b
                    insort(by_trap.setdefault(new_a, []), (index, next_hop[flat_index] > new_a))
                    insort(by_trap.setdefault(new_b, []), (index, penultimate[flat_index] > new_b))
                trap_pairs[index] = (new_a, new_b)
        return True

    # ------------------------------------------------------------------
    # the batched pass
    # ------------------------------------------------------------------
    def select(self, candidates: FlatCandidateBatch, stats) -> GenericSwap:
        """Argmin of ``H`` over ``candidates`` in one pass over the arrays.

        Counts one candidate evaluation per candidate into ``stats`` and
        applies the reference tie-break (first candidate strictly better
        than the incumbent by more than ``1e-12`` wins), so schedules
        *and* statistics match the other backends bit-for-bit.

        The distance arithmetic is inlined — at full scale the scorer
        recomputes a couple of million distances per run and the call
        overhead of a helper per distance is the single largest cost.
        Touched-gate collections are plain lists that may hold
        duplicates: a duplicate recompute cannot change a minimum, and
        the lookahead delta pass sorts and skips equal neighbours, so
        no per-candidate set is ever materialised.

        The hypothetical array writes are reverted inline per candidate;
        an exception here aborts the scheduling run, so no try/finally
        is spent keeping the mirror pristine mid-batch.
        """
        flat = self._flat
        qtrap = flat.qubit_trap
        qpos = flat.qubit_pos
        length = flat.length
        caps = flat.capacity
        full_bits = flat.full
        next_hop = self._next_hop
        penultimate = self._penultimate
        dist = self._dist
        n = self._n
        inner = self._inner
        shuttle_w = self._shuttle
        factors = self._factors
        frontier_pairs = self._frontier_pairs
        f_by_qubit = self._frontier_by_qubit
        f_by_trap = self._frontier_by_trap
        ordered_items = self._ordered_items
        base_penalty = self._base_penalty
        lookahead_pairs = self._lookahead_pairs
        lookahead_weight = self._lookahead_weight
        lookahead_on = bool(lookahead_pairs) and lookahead_weight > 0.0
        empty: tuple = ()
        lookahead_dis: list[float] = []
        la_by_qubit: dict[int, list[int]] = {}
        la_by_trap: dict[int, list[tuple[int, bool]]] = {}
        num_lookahead = 0
        base_future = 0.0
        if lookahead_on:
            lookahead_dis = self._lookahead_dis
            la_by_qubit = self._lookahead_by_qubit
            la_by_trap = self._lookahead_by_trap
            num_lookahead = len(lookahead_pairs)
            cached_future = self._base_future
            if cached_future is None:
                for dis_value in lookahead_dis:
                    base_future += dis_value
                self._base_future = base_future
            else:
                base_future = cached_future
        infinity = float("inf")
        best_score = infinity
        best_index = 0
        cand_index = -1
        for moved_a, moved_b, cand_trap, cand_target, cand_weight in candidates.items:
            cand_index += 1
            if moved_b < 0:
                # ---- SHUTTLE: retarget the moved ion, adjust two lengths ----
                source = cand_trap
                target = cand_target
                source_len = length[source]
                target_len = length[target]
                penalty = base_penalty
                if full_bits[source]:
                    penalty -= 1.0
                if target_len + 1 == caps[target]:
                    penalty += 1.0
                old_pos = qpos[moved_a]
                if target > source:
                    src_shift = 0
                    tgt_shift = 1
                    qpos[moved_a] = 0
                else:
                    src_shift = -1
                    tgt_shift = 0
                    qpos[moved_a] = target_len
                qtrap[moved_a] = target
                length[source] = source_len - 1
                length[target] = target_len + 1
                # The shuttle departs the source end facing the target
                # and merges at the target end facing the source; only
                # gates routed through those exact ends change distance.
                departs_right = target > source
                merges_right = source > target
                touched = list(f_by_qubit.get(moved_a, empty))
                append = touched.append
                for index, leaves_right in f_by_trap.get(source, empty):
                    if leaves_right == departs_right:
                        append(index)
                for index, leaves_right in f_by_trap.get(target, empty):
                    if leaves_right == merges_right:
                        append(index)
                best = infinity
                for index in touched:
                    a, b = frontier_pairs[index]
                    ta = qtrap[a]
                    tb = qtrap[b]
                    pa = qpos[a]
                    if a != moved_a:
                        if ta == source:
                            pa += src_shift
                        elif ta == target:
                            pa += tgt_shift
                    pb = qpos[b]
                    if b != moved_a:
                        if tb == source:
                            pb += src_shift
                        elif tb == target:
                            pb += tgt_shift
                    if ta == tb:
                        separation = pa - pb
                        if separation < 0:
                            separation = -separation
                        if separation > 1:
                            separation -= 1
                        else:
                            separation = 0
                        dis_value = inner * (separation + 1)
                    else:
                        flat_index = ta * n + tb
                        to_end_a = length[ta] - 1 - pa if next_hop[flat_index] > ta else pa
                        to_end_b = length[tb] - 1 - pb if penultimate[flat_index] > tb else pb
                        dis_value = inner * (to_end_a + to_end_b) + shuttle_w * dist[flat_index]
                    score = (dis_value + penalty) * factors[index]
                    if score < best:
                        best = score
                for factor, ordered in ordered_items:
                    for dis_value, index in ordered:
                        if index in touched:
                            continue
                        score = (dis_value + penalty) * factor
                        if score < best:
                            best = score
                        break
                total = best + cand_weight
                if lookahead_on:
                    la_touched = list(la_by_qubit.get(moved_a, empty))
                    append = la_touched.append
                    for index, leaves_right in la_by_trap.get(source, empty):
                        if leaves_right == departs_right:
                            append(index)
                    for index, leaves_right in la_by_trap.get(target, empty):
                        if leaves_right == merges_right:
                            append(index)
                    future = base_future
                    if la_touched:
                        la_touched.sort()
                        previous = -1
                        for index in la_touched:
                            if index == previous:
                                continue
                            previous = index
                            a, b = lookahead_pairs[index]
                            ta = qtrap[a]
                            tb = qtrap[b]
                            pa = qpos[a]
                            if a != moved_a:
                                if ta == source:
                                    pa += src_shift
                                elif ta == target:
                                    pa += tgt_shift
                            pb = qpos[b]
                            if b != moved_a:
                                if tb == source:
                                    pb += src_shift
                                elif tb == target:
                                    pb += tgt_shift
                            if ta == tb:
                                separation = pa - pb
                                if separation < 0:
                                    separation = -separation
                                if separation > 1:
                                    separation -= 1
                                else:
                                    separation = 0
                                after = inner * (separation + 1)
                            else:
                                flat_index = ta * n + tb
                                to_end_a = length[ta] - 1 - pa if next_hop[flat_index] > ta else pa
                                to_end_b = length[tb] - 1 - pb if penultimate[flat_index] > tb else pb
                                after = inner * (to_end_a + to_end_b) + shuttle_w * dist[flat_index]
                            before = lookahead_dis[index]
                            if after != before:
                                future += after - before
                    total += lookahead_weight * (future / num_lookahead)
                qtrap[moved_a] = source
                qpos[moved_a] = old_pos
                length[source] = source_len
                length[target] = target_len
            else:
                # ---- SWAP: exchange the two position entries ----
                pos_a = qpos[moved_a]
                pos_b = qpos[moved_b]
                qpos[moved_a] = pos_b
                qpos[moved_b] = pos_a
                penalty = base_penalty
                touched_a = f_by_qubit.get(moved_a, empty)
                touched_b = f_by_qubit.get(moved_b, empty)
                best = infinity
                for touched in (touched_a, touched_b):
                    for index in touched:
                        a, b = frontier_pairs[index]
                        ta = qtrap[a]
                        tb = qtrap[b]
                        if ta == tb:
                            separation = qpos[a] - qpos[b]
                            if separation < 0:
                                separation = -separation
                            if separation > 1:
                                separation -= 1
                            else:
                                separation = 0
                            dis_value = inner * (separation + 1)
                        else:
                            flat_index = ta * n + tb
                            pa = qpos[a]
                            pb = qpos[b]
                            to_end_a = length[ta] - 1 - pa if next_hop[flat_index] > ta else pa
                            to_end_b = length[tb] - 1 - pb if penultimate[flat_index] > tb else pb
                            dis_value = inner * (to_end_a + to_end_b) + shuttle_w * dist[flat_index]
                        score = (dis_value + penalty) * factors[index]
                        if score < best:
                            best = score
                for factor, ordered in ordered_items:
                    for dis_value, index in ordered:
                        if index in touched_a or index in touched_b:
                            continue
                        score = (dis_value + penalty) * factor
                        if score < best:
                            best = score
                        break
                total = best + cand_weight
                if lookahead_on:
                    la_a = la_by_qubit.get(moved_a, empty)
                    la_b = la_by_qubit.get(moved_b, empty)
                    future = base_future
                    if la_a or la_b:
                        if la_a and la_b:
                            la_touched = list(la_a)
                            la_touched.extend(la_b)
                            la_touched.sort()
                        else:
                            la_touched = la_a or la_b
                        previous = -1
                        for index in la_touched:
                            if index == previous:
                                continue
                            previous = index
                            a, b = lookahead_pairs[index]
                            ta = qtrap[a]
                            tb = qtrap[b]
                            if ta == tb:
                                separation = qpos[a] - qpos[b]
                                if separation < 0:
                                    separation = -separation
                                if separation > 1:
                                    separation -= 1
                                else:
                                    separation = 0
                                after = inner * (separation + 1)
                            else:
                                flat_index = ta * n + tb
                                pa = qpos[a]
                                pb = qpos[b]
                                to_end_a = length[ta] - 1 - pa if next_hop[flat_index] > ta else pa
                                to_end_b = length[tb] - 1 - pb if penultimate[flat_index] > tb else pb
                                after = inner * (to_end_a + to_end_b) + shuttle_w * dist[flat_index]
                            before = lookahead_dis[index]
                            if after != before:
                                future += after - before
                    total += lookahead_weight * (future / num_lookahead)
                qpos[moved_a] = pos_a
                qpos[moved_b] = pos_b
            if total < best_score - 1e-12:
                best_score = total
                best_index = cand_index
        stats.candidate_evaluations += len(candidates)
        return candidates.build(best_index)


class FlatRun:
    """The per-run flat backend bundle handed through the scheduling loop.

    Owns the array mirror of the run's *working* state plus the flat
    candidate generator and batched scorer bound to it.  The scheduler
    calls :meth:`notify_applied` for every swap it applies for real —
    that single entry point both advances the mirror and feeds the
    scorer's qubit/trap invalidation sets, which is what keeps the
    arrays and the canonical :class:`DeviceState` move-for-move
    identical for the whole run.
    """

    __slots__ = ("flat", "scorer", "generator")

    def __init__(
        self,
        state: DeviceState,
        device: QCCDDevice,
        rules: GenericSwapRules,
        cost: HeuristicCost,
    ) -> None:
        self.flat = FlatState(state)
        self.generator = FlatCandidates(self.flat, device, rules)
        self.scorer = FlatBatchScorer(self.flat, device, cost)

    def notify_applied(self, candidate: GenericSwap) -> None:
        """Advance the mirror and invalidate snapshots after a real move."""
        if candidate.qubit_b is None:
            self.flat.apply_shuttle(
                candidate.qubit_a, candidate.trap, candidate.target_trap  # type: ignore[arg-type]
            )
        else:
            self.flat.apply_swap(candidate.qubit_a, candidate.qubit_b)
        self.scorer.notify_applied(candidate)
