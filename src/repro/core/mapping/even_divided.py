"""Even-divided first-level mapping (paper §3.4, strategy 1).

Program qubits are distributed as uniformly as possible across all traps
(inspired by compilers for distributed NISQ machines): each trap gets
``floor(n / num_traps)`` or ``ceil(n / num_traps)`` consecutive program
qubits, subject to the per-trap usable capacity.  Keeping consecutive
program indices together preserves the nearest-neighbour structure most
benchmark circuits have.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping.base import InitialMapper
from repro.exceptions import MappingError
from repro.hardware.device import QCCDDevice


class EvenDividedMapper(InitialMapper):
    """Spread program qubits evenly over the traps."""

    name = "even-divided"

    def assign_traps(self, circuit: QuantumCircuit, device: QCCDDevice) -> dict[int, list[int]]:
        num_qubits = circuit.num_qubits
        traps = list(device.traps)
        num_traps = len(traps)
        base = num_qubits // num_traps
        remainder = num_qubits % num_traps

        quotas: dict[int, int] = {}
        for position, trap in enumerate(traps):
            target = base + (1 if position < remainder else 0)
            quotas[trap.trap_id] = min(target, self.usable_capacity(device, trap.trap_id))

        # Redistribute any overflow caused by the usable-capacity clamp.
        assigned_total = sum(quotas.values())
        overflow = num_qubits - assigned_total
        if overflow > 0:
            for trap in traps:
                room = self.usable_capacity(device, trap.trap_id) - quotas[trap.trap_id]
                take = min(room, overflow)
                quotas[trap.trap_id] += take
                overflow -= take
                if overflow == 0:
                    break
        if overflow > 0:
            # Fall back to eating into the reserved slots rather than failing.
            for trap in traps:
                room = device.capacity(trap.trap_id) - quotas[trap.trap_id]
                take = min(room, overflow)
                quotas[trap.trap_id] += take
                overflow -= take
                if overflow == 0:
                    break
        if overflow > 0:
            raise MappingError(
                f"even-divided mapping cannot place {overflow} qubits: device too small"
            )

        assignment: dict[int, list[int]] = {}
        next_qubit = 0
        for trap in traps:
            count = quotas[trap.trap_id]
            assignment[trap.trap_id] = list(range(next_qubit, next_qubit + count))
            next_qubit += count
        return assignment
