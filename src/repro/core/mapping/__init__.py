"""Initial mapping strategies (paper §3.4)."""

from repro.core.mapping.base import InitialMapper
from repro.core.mapping.even_divided import EvenDividedMapper
from repro.core.mapping.gathering import GatheringMapper
from repro.core.mapping.intra_trap import (
    is_mountain_shaped,
    location_scores,
    mountain_arrange,
    mountain_order,
)
from repro.core.mapping.sta import STAMapper
from repro.exceptions import MappingError

#: Registry of first-level mapping strategies by name.
MAPPER_REGISTRY: dict[str, type[InitialMapper]] = {
    EvenDividedMapper.name: EvenDividedMapper,
    GatheringMapper.name: GatheringMapper,
    STAMapper.name: STAMapper,
}


def get_mapper(name: "str | InitialMapper", **kwargs: int) -> InitialMapper:
    """Resolve a mapping strategy by name (or pass an instance through)."""
    if isinstance(name, InitialMapper):
        return name
    key = name.lower().replace("_", "-")
    if key not in MAPPER_REGISTRY:
        valid = ", ".join(sorted(MAPPER_REGISTRY))
        raise MappingError(f"unknown initial mapping {name!r}; expected one of {valid}")
    return MAPPER_REGISTRY[key](**kwargs)


__all__ = [
    "EvenDividedMapper",
    "GatheringMapper",
    "InitialMapper",
    "MAPPER_REGISTRY",
    "STAMapper",
    "get_mapper",
    "is_mountain_shaped",
    "location_scores",
    "mountain_arrange",
    "mountain_order",
]
