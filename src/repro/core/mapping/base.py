"""Initial mapping interfaces (paper §3.4, first level of the hierarchy).

An initial mapping assigns every program qubit of a circuit to a trap and
to a position inside that trap's chain.  The paper splits this into two
levels: a *first level* that distributes qubits over traps (even-divided,
gathering, or STA) and a *second level* that orders the qubits inside
each trap (the "mountain" arrangement of Eq. 3, implemented in
:mod:`repro.core.mapping.intra_trap`).

Every strategy produces a :class:`repro.core.state.DeviceState`, which is
the scheduler's starting occupancy.
"""

from __future__ import annotations

import abc

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping.intra_trap import mountain_order
from repro.core.state import DeviceState
from repro.exceptions import MappingError
from repro.hardware.device import QCCDDevice


class InitialMapper(abc.ABC):
    """Base class for first-level trap-assignment strategies."""

    #: Human-readable strategy name used in reports and sweeps.
    name: str = "base"

    def __init__(self, reserve_per_trap: int = 1, intra_trap_lookahead: int = 8) -> None:
        if reserve_per_trap < 0:
            raise MappingError("reserve_per_trap cannot be negative")
        if intra_trap_lookahead < 1:
            raise MappingError("intra_trap_lookahead must be at least 1")
        self.reserve_per_trap = reserve_per_trap
        self.intra_trap_lookahead = intra_trap_lookahead

    # ------------------------------------------------------------------
    # template method
    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit, device: QCCDDevice) -> DeviceState:
        """Produce the initial occupancy for ``circuit`` on ``device``."""
        self._check_fit(circuit, device)
        assignment = self.assign_traps(circuit, device)
        self._check_assignment(circuit, device, assignment)
        ordered = {
            trap_id: mountain_order(circuit, qubits, set(qubits), self.intra_trap_lookahead)
            for trap_id, qubits in assignment.items()
        }
        return DeviceState.from_mapping(device, ordered)

    @abc.abstractmethod
    def assign_traps(self, circuit: QuantumCircuit, device: QCCDDevice) -> dict[int, list[int]]:
        """First level: return a trap → program-qubit-list assignment."""

    # ------------------------------------------------------------------
    # shared validation
    # ------------------------------------------------------------------
    def usable_capacity(self, device: QCCDDevice, trap_id: int) -> int:
        """Capacity of a trap after reserving slots for incoming ions."""
        return max(device.capacity(trap_id) - self.reserve_per_trap, 0)

    def _check_fit(self, circuit: QuantumCircuit, device: QCCDDevice) -> None:
        if circuit.num_qubits > device.total_capacity:
            raise MappingError(
                f"circuit needs {circuit.num_qubits} qubits but the device only has "
                f"{device.total_capacity} slots"
            )
        if circuit.num_qubits >= device.total_capacity:
            raise MappingError(
                "the device needs at least one free slot for routing; "
                f"{circuit.num_qubits} qubits fill all {device.total_capacity} slots"
            )
        # Note: the per-trap reservation is a soft preference — strategies may
        # spill into reserved slots when the circuit would not otherwise fit,
        # as long as at least one slot in the whole device stays free.

    def _check_assignment(
        self, circuit: QuantumCircuit, device: QCCDDevice, assignment: dict[int, list[int]]
    ) -> None:
        placed: list[int] = []
        for trap_id, qubits in assignment.items():
            if len(qubits) > device.capacity(trap_id):
                raise MappingError(
                    f"strategy {self.name!r} assigned {len(qubits)} qubits to trap {trap_id} "
                    f"(capacity {device.capacity(trap_id)})"
                )
            placed.extend(qubits)
        if len(placed) != len(set(placed)):
            raise MappingError(f"strategy {self.name!r} assigned some qubit twice")
        expected = set(range(circuit.num_qubits))
        if set(placed) != expected:
            missing = sorted(expected - set(placed))
            raise MappingError(f"strategy {self.name!r} left qubits unplaced: {missing[:10]}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(reserve_per_trap={self.reserve_per_trap})"
