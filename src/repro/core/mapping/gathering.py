"""Gathering first-level mapping (paper §3.4, strategy 2).

Qubits are packed into as few traps as possible, leaving one reserved
slot per trap for incoming ions, so that most two-qubit gates can run
without any shuttling at all.  The traps are filled in order of
centrality in the trap graph (most-central first) so that the occupied
region stays compact and unavoidable shuttles stay short.

The trade-off the paper studies in Fig. 12: gathering minimises shuttles
but produces long ion chains, which makes FM two-qubit gates slower and
can *reduce* the overall success rate.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping.base import InitialMapper
from repro.exceptions import MappingError
from repro.hardware.device import QCCDDevice


class GatheringMapper(InitialMapper):
    """Cluster program qubits into as few traps as possible."""

    name = "gathering"

    def _trap_fill_order(self, device: QCCDDevice) -> list[int]:
        """Traps ordered by closeness centrality (most central first)."""
        graph = device.trap_graph
        if device.num_traps == 1:
            return [device.traps[0].trap_id]
        centrality = nx.closeness_centrality(graph, distance="weight")
        return sorted(centrality, key=lambda trap_id: (-centrality[trap_id], trap_id))

    def assign_traps(self, circuit: QuantumCircuit, device: QCCDDevice) -> dict[int, list[int]]:
        order = self._trap_fill_order(device)
        assignment: dict[int, list[int]] = {trap.trap_id: [] for trap in device.traps}
        next_qubit = 0
        remaining = circuit.num_qubits
        for trap_id in order:
            if remaining == 0:
                break
            room = self.usable_capacity(device, trap_id)
            take = min(room, remaining)
            assignment[trap_id] = list(range(next_qubit, next_qubit + take))
            next_qubit += take
            remaining -= take
        if remaining > 0:
            # Eat into reserved slots (but never completely fill a trap if
            # it would leave the whole device without any free slot).
            for trap_id in order:
                room = device.capacity(trap_id) - len(assignment[trap_id])
                take = min(room, remaining)
                assignment[trap_id].extend(range(next_qubit, next_qubit + take))
                next_qubit += take
                remaining -= take
                if remaining == 0:
                    break
        if remaining > 0:
            raise MappingError(
                f"gathering mapping cannot place {remaining} remaining qubits: device too small"
            )
        return assignment
