"""Second-level (intra-trap) mapping: the "mountain" ordering of Eq. 3.

Within a trap, qubits that will soon interact with qubits in *other*
traps should sit near the chain ends (cheap to split off), while qubits
that mostly interact *within* the trap should sit in the middle.  The
paper scores each qubit with

    l(q) = −α·E(q) + β·I(q)

where, over the first ``k`` dependency layers of the circuit, ``E(q)``
counts two-qubit gates pairing ``q`` with a qubit in another trap and
``I(q)`` counts gates pairing it with a qubit in the same trap.  Sorting
by ``l`` and filling the chain from the ends inwards yields the
"mountain" profile: low scores (shuttle-bound qubits) at the edges, high
scores in the centre.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.exceptions import MappingError


def location_scores(
    circuit: QuantumCircuit,
    trap_qubits: Sequence[int],
    same_trap_qubits: set[int],
    lookahead_layers: int = 8,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> dict[int, float]:
    """Compute l(q) = −α·E(q) + β·I(q) for every qubit of one trap."""
    if lookahead_layers < 1:
        raise MappingError("lookahead_layers must be at least 1")
    dag = DependencyDAG(circuit)
    gates = dag.gates_in_first_layers(lookahead_layers)
    internal = {q: 0 for q in trap_qubits}
    external = {q: 0 for q in trap_qubits}
    members = set(trap_qubits)
    for gate in gates:
        a, b = gate.qubits
        for qubit, partner in ((a, b), (b, a)):
            if qubit not in members:
                continue
            if partner in same_trap_qubits:
                internal[qubit] += 1
            else:
                external[qubit] += 1
    return {
        q: -alpha * external[q] + beta * internal[q] for q in trap_qubits
    }


def mountain_arrange(scores: dict[int, float]) -> list[int]:
    """Arrange qubits so scores rise towards the middle of the chain.

    Qubits are sorted by ascending score and dealt alternately to the
    left and right ends of the chain, so the two lowest-scoring qubits
    end up at the two edges and the highest-scoring qubit near the
    centre — the paper's "mountain-like" profile.
    """
    ordered = sorted(scores, key=lambda q: (scores[q], q))
    left: list[int] = []
    right: list[int] = []
    for turn, qubit in enumerate(ordered):
        if turn % 2 == 0:
            left.append(qubit)
        else:
            right.append(qubit)
    return left + list(reversed(right))


def mountain_order(
    circuit: QuantumCircuit,
    trap_qubits: Iterable[int],
    same_trap_qubits: set[int],
    lookahead_layers: int = 8,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> list[int]:
    """Order the qubits of one trap with the Eq.-3 mountain arrangement."""
    trap_qubit_list = list(trap_qubits)
    if not trap_qubit_list:
        return []
    if len(trap_qubit_list) == 1:
        return trap_qubit_list
    scores = location_scores(
        circuit, trap_qubit_list, same_trap_qubits, lookahead_layers, alpha, beta
    )
    return mountain_arrange(scores)


def is_mountain_shaped(values: Sequence[float]) -> bool:
    """True when ``values`` never rises again after it starts falling.

    Used by tests to verify the arranged score profile is unimodal
    (non-decreasing, then non-increasing).
    """
    if len(values) <= 2:
        return True
    falling = False
    for previous, current in zip(values, values[1:]):
        if current < previous:
            falling = True
        elif current > previous and falling:
            return False
    return True
