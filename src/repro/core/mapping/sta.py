"""STA (spatio-temporal aware) first-level mapping (paper §3.4, strategy 3).

Following Ovide et al. and the paper's description, STA places qubits
with stronger *spatio-temporal* correlation close together: pairs that
interact often — and early — in the circuit should share a trap, and
strongly coupled traps should be adjacent in the trap graph.

Implementation outline:

1. Build an interaction graph whose edge weights favour early gates
   (each two-qubit gate in dependency layer ``l`` contributes
   ``1 / (1 + l)``).
2. Greedily grow one cluster per trap: seed with the heaviest unassigned
   qubit, then repeatedly absorb the unassigned qubit with the largest
   total weight into the cluster, up to the trap's usable capacity.
3. Assign clusters to traps in a breadth-first order of the trap graph
   starting from the most central trap, so consecutive (strongly
   coupled) clusters land on adjacent traps.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.core.mapping.base import InitialMapper
from repro.exceptions import MappingError
from repro.hardware.device import QCCDDevice


class STAMapper(InitialMapper):
    """Spatio-temporal-aware clustering of program qubits onto traps."""

    name = "sta"

    def _weighted_interaction_graph(self, circuit: QuantumCircuit) -> nx.Graph:
        """Interaction graph with earlier gates weighted more heavily."""
        graph: nx.Graph = nx.Graph()
        graph.add_nodes_from(range(circuit.num_qubits))
        level: dict[int, int] = defaultdict(int)
        for gate in circuit.gates:
            if not gate.is_two_qubit:
                continue
            a, b = gate.qubits
            layer = max(level[a], level[b])
            level[a] = layer + 1
            level[b] = layer + 1
            weight = 1.0 / (1.0 + layer)
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += weight
            else:
                graph.add_edge(a, b, weight=weight)
        return graph

    def _trap_visit_order(self, device: QCCDDevice) -> list[int]:
        """Breadth-first trap order from the most central trap."""
        graph = device.trap_graph
        if device.num_traps == 1:
            return [device.traps[0].trap_id]
        centrality = nx.closeness_centrality(graph, distance="weight")
        start = max(centrality, key=lambda trap_id: (centrality[trap_id], -trap_id))
        order = [start]
        seen = {start}
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for trap_id in frontier:
                for neighbour in sorted(graph.neighbors(trap_id)):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier
        # Disconnected graphs cannot occur (QCCDDevice enforces connectivity).
        return order

    def assign_traps(self, circuit: QuantumCircuit, device: QCCDDevice) -> dict[int, list[int]]:
        interaction = self._weighted_interaction_graph(circuit)
        strength = {q: sum(d["weight"] for _, _, d in interaction.edges(q, data=True)) for q in interaction}
        unassigned = set(range(circuit.num_qubits))
        trap_order = self._trap_visit_order(device)
        assignment: dict[int, list[int]] = {trap.trap_id: [] for trap in device.traps}

        for trap_id in trap_order:
            if not unassigned:
                break
            quota = self.usable_capacity(device, trap_id)
            if quota == 0:
                continue
            cluster: list[int] = []
            seed = max(unassigned, key=lambda q: (strength.get(q, 0.0), -q))
            cluster.append(seed)
            unassigned.discard(seed)
            while len(cluster) < quota and unassigned:
                best_qubit = None
                best_weight = -1.0
                for q in unassigned:
                    weight = sum(
                        interaction[q][member]["weight"]
                        for member in cluster
                        if interaction.has_edge(q, member)
                    )
                    if weight > best_weight or (weight == best_weight and (best_qubit is None or q < best_qubit)):
                        best_weight = weight
                        best_qubit = q
                if best_qubit is None:
                    break
                cluster.append(best_qubit)
                unassigned.discard(best_qubit)
            assignment[trap_id] = cluster

        if unassigned:
            # Place leftovers in reserved slots, most central traps first.
            for trap_id in trap_order:
                room = device.capacity(trap_id) - len(assignment[trap_id])
                while room > 0 and unassigned:
                    qubit = min(unassigned)
                    assignment[trap_id].append(qubit)
                    unassigned.discard(qubit)
                    room -= 1
                if not unassigned:
                    break
        if unassigned:
            raise MappingError(
                f"STA mapping cannot place {len(unassigned)} remaining qubits: device too small"
            )
        return assignment
