"""The S-SYNC generic-swap scheduling loop (Algorithm 1 of the paper).

The scheduler walks the dependency DAG of two-qubit gates.  Whenever a
frontier gate's operands share a trap, the gate executes immediately;
otherwise the scheduler enumerates candidate *generic swaps* (intra-trap
SWAP gates and inter-trap shuttles, §3.2), scores each with the heuristic
``H`` of Eq. 1 on a hypothetical placement, applies the cheapest one, and
repeats.

Two engineering safeguards complement the paper's description:

* a candidate that exactly reverses the previously applied generic swap
  is discarded (unless it is the only option), and
* if no frontier gate has executed for ``stall_limit`` consecutive
  generic swaps, the oldest frontier gate is *force-routed* along the
  shortest trap path, which guarantees termination on adversarial
  inputs.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DAGNode, DependencyDAG
from repro.circuit.gate import Gate
from repro.core.generic_swap import GenericSwap, GenericSwapKind, GenericSwapRules
from repro.core.heuristic import DecayTracker, HeuristicCost, apply_generic_swap
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.hardware.graph import GraphWeights
from repro.schedule.operations import GateOperation, ShuttleOperation, SwapOperation
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable parameters of the generic-swap scheduler.

    The defaults follow §4.4 of the paper: inner weight 0.001, shuttle
    weight 1, decay δ = 0.001 reset after 5 iterations.  ``lookahead``
    parameters extend the heuristic beyond the frontier (0 = paper
    faithful).
    """

    weights: GraphWeights = field(default_factory=GraphWeights)
    decay_delta: float = 0.001
    decay_reset_interval: int = 5
    #: Number of dependency layers beyond the frontier considered by the
    #: heuristic.  The paper's Eq. 1 only looks at the frontier
    #: (``lookahead_depth = 0``); a shallow lookahead is an extension that
    #: markedly reduces shuttle counts on serial circuits such as the
    #: Cuccaro adder and is therefore the default here.
    lookahead_depth: int = 4
    lookahead_weight: float = 0.5
    stall_limit: int = 64
    max_generic_swaps: int = 2_000_000

    def __post_init__(self) -> None:
        if self.stall_limit < 1:
            raise SchedulingError("stall_limit must be at least 1")
        if self.max_generic_swaps < 1:
            raise SchedulingError("max_generic_swaps must be at least 1")
        if self.lookahead_depth < 0 or self.lookahead_weight < 0:
            raise SchedulingError("lookahead parameters cannot be negative")


@dataclass
class SchedulerStatistics:
    """Counters describing one scheduling run (for analysis and tests)."""

    generic_swap_iterations: int = 0
    forced_routes: int = 0
    executed_two_qubit_gates: int = 0
    candidate_evaluations: int = 0


class GenericSwapScheduler:
    """Algorithm 1: generic-swap based shuttling schedule."""

    def __init__(self, device: QCCDDevice, config: SchedulerConfig | None = None) -> None:
        self.device = device
        self.config = config or SchedulerConfig()
        self.rules = GenericSwapRules(self.config.weights)
        self.cost = HeuristicCost(self.config.weights)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self, circuit: QuantumCircuit, initial_state: DeviceState
    ) -> tuple[Schedule, DeviceState, SchedulerStatistics]:
        """Schedule ``circuit`` starting from ``initial_state``.

        Returns the operation log, the final occupancy and run statistics.
        The initial state is not mutated.
        """
        self._check_initial_state(circuit, initial_state)
        state = initial_state.copy()
        schedule = Schedule(self.device, circuit.name)
        stats = SchedulerStatistics()
        dag = DependencyDAG(circuit)
        pending_1q, trailing_1q = self._partition_single_qubit_gates(circuit)
        decay = DecayTracker(self.config.decay_delta, self.config.decay_reset_interval)

        last_swap: GenericSwap | None = None
        swaps_since_progress = 0

        self._execute_ready_gates(dag, state, schedule, pending_1q, stats)
        while not dag.is_done:
            frontier = dag.frontier()
            frontier_pairs = [(node.gate.qubits[0], node.gate.qubits[1]) for node in frontier]
            candidates = self.rules.candidates_for_gates(state, frontier_pairs)
            non_reversing = [c for c in candidates if not c.reverses(last_swap)]
            if non_reversing:
                candidates = non_reversing

            if not candidates or swaps_since_progress >= self.config.stall_limit:
                self._force_route(schedule, state, frontier[0], stats)
                stats.forced_routes += 1
                swaps_since_progress = 0
                last_swap = None
            else:
                best = self._select_candidate(state, candidates, frontier_pairs, dag, decay, stats)
                self._apply_candidate(schedule, state, best)
                decay.advance()
                decay.record(best.moved_qubits)
                last_swap = best
                swaps_since_progress += 1
                stats.generic_swap_iterations += 1
                if stats.generic_swap_iterations > self.config.max_generic_swaps:
                    raise SchedulingError(
                        "scheduler exceeded the generic-swap budget "
                        f"({self.config.max_generic_swaps}); the circuit/device combination "
                        "appears unroutable"
                    )

            if self._execute_ready_gates(dag, state, schedule, pending_1q, stats):
                swaps_since_progress = 0

        for gate in trailing_1q:
            self._emit_single_qubit_gate(schedule, state, gate)
        schedule.validate_against(sum(1 for g in circuit.gates if g.is_two_qubit))
        return schedule, state, stats

    # ------------------------------------------------------------------
    # gate execution
    # ------------------------------------------------------------------
    def _check_initial_state(self, circuit: QuantumCircuit, state: DeviceState) -> None:
        missing = [q for q in range(circuit.num_qubits) if not state.is_placed(q)]
        if missing:
            raise SchedulingError(
                f"initial mapping does not place qubits {missing[:10]} (and possibly more)"
            )
        if state.device is not self.device and state.device.name != self.device.name:
            raise SchedulingError("the initial state was built for a different device")

    def _partition_single_qubit_gates(
        self, circuit: QuantumCircuit
    ) -> tuple[dict[int, list[Gate]], list[Gate]]:
        """Attach every single-qubit gate to the next two-qubit gate on its qubit."""
        pending: dict[int, list[Gate]] = defaultdict(list)
        waiting: dict[int, list[Gate]] = defaultdict(list)
        for index, gate in enumerate(circuit.gates):
            if gate.is_two_qubit:
                for q in gate.qubits:
                    if waiting[q]:
                        pending[index].extend(waiting[q])
                        waiting[q] = []
            elif gate.is_single_qubit:
                waiting[gate.qubits[0]].append(gate)
        trailing = [gate for q in sorted(waiting) for gate in waiting[q]]
        return dict(pending), trailing

    def _execute_ready_gates(
        self,
        dag: DependencyDAG,
        state: DeviceState,
        schedule: Schedule,
        pending_1q: dict[int, list[Gate]],
        stats: SchedulerStatistics,
    ) -> bool:
        """Execute every frontier gate whose operands share a trap."""
        executed_any = False
        progress = True
        while progress:
            progress = False
            for node in dag.frontier():
                qubit_a, qubit_b = node.gate.qubits
                if not state.same_trap(qubit_a, qubit_b):
                    continue
                for gate in pending_1q.pop(node.index, []):
                    self._emit_single_qubit_gate(schedule, state, gate)
                self._emit_two_qubit_gate(schedule, state, node)
                dag.execute(node.index)
                stats.executed_two_qubit_gates += 1
                executed_any = True
                progress = True
        return executed_any

    def _emit_single_qubit_gate(self, schedule: Schedule, state: DeviceState, gate: Gate) -> None:
        trap = state.trap_of(gate.qubits[0])
        schedule.append(
            GateOperation(gate=gate, trap=trap, chain_length=max(state.chain_length(trap), 1))
        )

    def _emit_two_qubit_gate(self, schedule: Schedule, state: DeviceState, node: DAGNode) -> None:
        qubit_a, qubit_b = node.gate.qubits
        trap = state.trap_of(qubit_a)
        schedule.append(
            GateOperation(
                gate=node.gate,
                trap=trap,
                chain_length=state.chain_length(trap),
                ion_separation=state.ion_separation(qubit_a, qubit_b),
            )
        )

    # ------------------------------------------------------------------
    # candidate selection and application
    # ------------------------------------------------------------------
    def _select_candidate(
        self,
        state: DeviceState,
        candidates: list[GenericSwap],
        frontier_pairs: list[tuple[int, int]],
        dag: DependencyDAG,
        decay: DecayTracker,
        stats: SchedulerStatistics,
    ) -> GenericSwap:
        lookahead_pairs: list[tuple[int, int]] | None = None
        if self.config.lookahead_depth > 0:
            lookahead_pairs = [
                (node.gate.qubits[0], node.gate.qubits[1])
                for node in dag.lookahead(self.config.lookahead_depth, skip_frontier=True)
            ]
        best_candidate = candidates[0]
        best_score = float("inf")
        for candidate in candidates:
            score = self.cost.swap_score(
                state,
                candidate,
                frontier_pairs,
                decay,
                lookahead_pairs=lookahead_pairs,
                lookahead_weight=self.config.lookahead_weight,
            )
            stats.candidate_evaluations += 1
            if score < best_score - 1e-12:
                best_score = score
                best_candidate = candidate
        return best_candidate

    def _apply_candidate(self, schedule: Schedule, state: DeviceState, candidate: GenericSwap) -> None:
        if candidate.kind is GenericSwapKind.SWAP_GATE:
            assert candidate.qubit_b is not None
            trap = state.trap_of(candidate.qubit_a)
            schedule.append(
                SwapOperation(
                    trap=trap,
                    qubit_a=candidate.qubit_a,
                    qubit_b=candidate.qubit_b,
                    chain_length=state.chain_length(trap),
                    ion_separation=state.ion_separation(candidate.qubit_a, candidate.qubit_b),
                )
            )
            apply_generic_swap(state, candidate)
        else:
            assert candidate.target_trap is not None
            source_trap = state.trap_of(candidate.qubit_a)
            connection = self.device.connection_between(source_trap, candidate.target_trap)
            source_before = state.chain_length(source_trap)
            apply_generic_swap(state, candidate)
            schedule.append(
                ShuttleOperation(
                    qubit=candidate.qubit_a,
                    source_trap=source_trap,
                    target_trap=candidate.target_trap,
                    segments=connection.segments,
                    junctions=connection.junctions,
                    source_chain_length=source_before,
                    target_chain_length=state.chain_length(candidate.target_trap),
                )
            )

    # ------------------------------------------------------------------
    # stall-breaking fallback
    # ------------------------------------------------------------------
    def _force_route(
        self, schedule: Schedule, state: DeviceState, node: DAGNode, stats: SchedulerStatistics
    ) -> None:
        """Deterministically co-locate the operands of ``node``'s gate."""
        qubit_a, qubit_b = node.gate.qubits
        safety = 4 * self.device.num_traps * max(t.capacity for t in self.device.traps) + 16
        steps = 0
        while not state.same_trap(qubit_a, qubit_b):
            steps += 1
            if steps > safety:
                raise SchedulingError(
                    f"force-routing gate {node.gate} did not converge; the device appears "
                    "too congested to route"
                )
            source = state.trap_of(qubit_a)
            target = state.trap_of(qubit_b)
            next_trap = self.device.next_hop(source, target)
            departing_end = state.facing_end(source, next_trap)
            # Free the destination before positioning the qubit: an eviction
            # may merge an ion into this trap's departing end and displace it.
            if not state.has_space(next_trap):
                self._make_space(schedule, state, next_trap, protected=(qubit_a,))
            if not state.is_at_end(qubit_a, departing_end):
                end_qubit = state.end_qubit(source, departing_end)
                assert end_qubit is not None and end_qubit != qubit_a
                self._apply_candidate(
                    schedule,
                    state,
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=qubit_a,
                        qubit_b=end_qubit,
                        trap=source,
                        target_trap=None,
                        weight=self.rules.swap_gate_weight(
                            max(state.ion_separation(qubit_a, end_qubit) + 1, 1)
                        ),
                    ),
                )
            connection = self.device.connection_between(source, next_trap)
            self._apply_candidate(
                schedule,
                state,
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=qubit_a,
                    qubit_b=None,
                    trap=source,
                    target_trap=next_trap,
                    weight=self.rules.shuttle_weight(connection.junctions),
                ),
            )

    def _make_space(
        self, schedule: Schedule, state: DeviceState, trap_id: int, protected: tuple[int, ...]
    ) -> None:
        """Free one slot in ``trap_id`` by pushing ions towards the nearest trap with room."""
        path = self._path_to_free_slot(state, trap_id)
        # Push ions backwards along the path: the last hop moves first.
        for source, target in reversed(list(zip(path, path[1:]))):
            end = state.facing_end(source, target)
            victim = state.end_qubit(source, end)
            if victim is None:
                continue
            if victim in protected:
                # Move the protected qubit away from the departing end first.
                chain = state.chain(source)
                replacement = next((q for q in chain if q not in protected), None)
                if replacement is None:
                    raise SchedulingError(
                        f"cannot free a slot in trap {source}: every ion is protected"
                    )
                self._apply_candidate(
                    schedule,
                    state,
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=victim,
                        qubit_b=replacement,
                        trap=source,
                        target_trap=None,
                        weight=self.rules.swap_gate_weight(1),
                    ),
                )
                victim = state.end_qubit(source, end)
                assert victim is not None
            connection = self.device.connection_between(source, target)
            self._apply_candidate(
                schedule,
                state,
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=victim,
                    qubit_b=None,
                    trap=source,
                    target_trap=target,
                    weight=self.rules.shuttle_weight(connection.junctions),
                ),
            )

    def _path_to_free_slot(self, state: DeviceState, trap_id: int) -> list[int]:
        """Shortest hop path from ``trap_id`` to the nearest trap with a free slot."""
        if state.has_space(trap_id):
            return [trap_id]
        visited = {trap_id}
        frontier = [[trap_id]]
        while frontier:
            next_frontier: list[list[int]] = []
            for path in frontier:
                for neighbour in self.device.neighbors(path[-1]):
                    if neighbour in visited:
                        continue
                    visited.add(neighbour)
                    new_path = path + [neighbour]
                    if state.has_space(neighbour):
                        return new_path
                    next_frontier.append(new_path)
            frontier = next_frontier
        raise SchedulingError(
            "every trap on the device is full; at least one free slot is required for routing"
        )
