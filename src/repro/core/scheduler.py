"""The S-SYNC generic-swap scheduling loop (Algorithm 1 of the paper).

The scheduler walks the dependency DAG of two-qubit gates.  Whenever a
frontier gate's operands share a trap, the gate executes immediately;
otherwise the scheduler enumerates candidate *generic swaps* (intra-trap
SWAP gates and inter-trap shuttles, §3.2), scores each with the heuristic
``H`` of Eq. 1 on a hypothetical placement, applies the cheapest one, and
repeats.

Two engineering safeguards complement the paper's description:

* a candidate that exactly reverses the previously applied generic swap
  is discarded (unless it is the only option), and
* if no frontier gate has executed for ``stall_limit`` consecutive
  generic swaps, the oldest frontier gate is *force-routed* along the
  shortest trap path, which guarantees termination on adversarial
  inputs.

The hot path is selectable via ``SchedulerConfig.backend`` and ships in
three implementations that produce bit-identical schedules and
statistics (asserted by the randomized parity suite):

* ``"flat"`` (default) — candidate generation and batched scoring on
  flat integer arrays (:mod:`repro.core.flatstate`); every candidate of
  an iteration is evaluated in one pass with hypothetical placements
  costing a few array writes.
* ``"incremental"`` — delta evaluation on the live ``DeviceState`` with
  per-candidate apply/undo (:mod:`repro.core.incremental`).
* ``"naive"`` — the reference implementation: a fresh ``state.copy()``
  and a full rescore per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.circuit.gate import Gate
from repro.core.flatstate import FlatCandidateBatch, FlatRun, FlatState
from repro.core.generic_swap import GenericSwap, GenericSwapKind, GenericSwapRules
from repro.core.heuristic import DecayTracker, HeuristicCost, apply_generic_swap
from repro.core.incremental import IncrementalRun
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.device import QCCDDevice
from repro.hardware.graph import GraphWeights
from repro.schedule.operations import (
    KIND_CODE_GATE_1Q,
    KIND_CODE_GATE_2Q,
    GateOperation,
    ShuttleOperation,
    SwapOperation,
)
from repro.schedule.schedule import Schedule

#: The selectable scheduler cores, fastest first.  All three produce
#: bit-identical schedules and statistics; see the module docstring.
SCHEDULER_BACKENDS = ("flat", "incremental", "naive")

#: Union of the per-run cache bundles the scheduling loop threads around
#: (``None`` is the naive backend: no caches, reference scoring).
RunCaches = "FlatRun | IncrementalRun | None"


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunable parameters of the generic-swap scheduler.

    The defaults follow §4.4 of the paper: inner weight 0.001, shuttle
    weight 1, decay δ = 0.001 reset after 5 iterations.  ``lookahead``
    parameters extend the heuristic beyond the frontier (0 = paper
    faithful).
    """

    weights: GraphWeights = field(default_factory=GraphWeights)
    decay_delta: float = 0.001
    decay_reset_interval: int = 5
    #: Number of dependency layers beyond the frontier considered by the
    #: heuristic.  The paper's Eq. 1 only looks at the frontier
    #: (``lookahead_depth = 0``); a shallow lookahead is an extension that
    #: markedly reduces shuttle counts on serial circuits such as the
    #: Cuccaro adder and is therefore the default here.
    lookahead_depth: int = 4
    lookahead_weight: float = 0.5
    stall_limit: int = 64
    max_generic_swaps: int = 2_000_000
    #: Legacy backend toggle kept for compatibility: ``True`` selects the
    #: ``"incremental"`` backend, ``False`` the ``"naive"`` one.  When
    #: set it wins over ``backend`` and is normalized back to ``None``
    #: during ``__post_init__`` so only ``backend`` carries the resolved
    #: choice (and ``dataclasses.replace`` chains keep working).
    incremental: "bool | None" = None
    #: Which scheduler core scores candidates — one of
    #: :data:`SCHEDULER_BACKENDS`.  ``None`` resolves to ``"flat"``.
    #: All backends produce bit-identical schedules and statistics
    #: (asserted by the randomized parity suite); the slower ones exist
    #: as references and for benchmarking the speedups.
    backend: "str | None" = None

    def __post_init__(self) -> None:
        if self.stall_limit < 1:
            raise SchedulingError("stall_limit must be at least 1")
        if self.max_generic_swaps < 1:
            raise SchedulingError("max_generic_swaps must be at least 1")
        if self.lookahead_depth < 0 or self.lookahead_weight < 0:
            raise SchedulingError("lookahead parameters cannot be negative")
        # Resolve the backend exactly once, here, so every consumer
        # (run(), pipeline statistics, benchmarks) reads one field and
        # the naive candidate loop can never be reached by accident.
        backend = self.backend
        if self.incremental is not None:
            backend = "incremental" if self.incremental else "naive"
            object.__setattr__(self, "incremental", None)
        elif backend is None:
            backend = "flat"
        if backend not in SCHEDULER_BACKENDS:
            raise SchedulingError(
                f"unknown scheduler backend {backend!r}; expected one of {SCHEDULER_BACKENDS}"
            )
        object.__setattr__(self, "backend", backend)


@dataclass
class SchedulerStatistics:
    """Counters describing one scheduling run (for analysis and tests)."""

    generic_swap_iterations: int = 0
    forced_routes: int = 0
    executed_two_qubit_gates: int = 0
    candidate_evaluations: int = 0


class GenericSwapScheduler:
    """Algorithm 1: generic-swap based shuttling schedule."""

    def __init__(self, device: QCCDDevice, config: SchedulerConfig | None = None) -> None:
        self.device = device
        self.config = config or SchedulerConfig()
        self.rules = GenericSwapRules(self.config.weights)
        self.cost = HeuristicCost(self.config.weights)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(
        self, circuit: QuantumCircuit, initial_state: DeviceState
    ) -> tuple[Schedule, DeviceState, SchedulerStatistics]:
        """Schedule ``circuit`` starting from ``initial_state``.

        Returns the operation log, the final occupancy and run statistics.
        The initial state is not mutated.
        """
        self._check_initial_state(circuit, initial_state)
        state = initial_state.copy()
        schedule = Schedule(self.device, circuit.name)
        stats = SchedulerStatistics()
        dag = DependencyDAG(circuit, attach_single_qubit_gates=True)
        pending_1q = dag.pending_single_qubit
        trailing_1q = dag.trailing_single_qubit
        decay = DecayTracker(self.config.decay_delta, self.config.decay_reset_interval)
        backend = self.config.backend
        caches: "FlatRun | IncrementalRun | None"
        if backend == "flat":
            caches = FlatRun(state, self.device, self.rules, self.cost)
            generate_candidates = caches.generator.candidates_for_gates
        elif backend == "incremental":
            caches = IncrementalRun(state, self.device, self.rules, self.cost)
            generate_candidates = caches.candidates.candidates_for_gates
        elif backend == "naive":
            caches = None
            generate_candidates = self.rules.candidates_for_gates
        else:  # pragma: no cover - __post_init__ validates the field
            raise SchedulingError(f"unknown scheduler backend {backend!r}")
        if isinstance(caches, FlatRun):
            flat_mirror = caches.flat
            # Single-pass materialisation: the flat backend appends plain
            # scalars into the schedule's columnar slab — no per-op
            # record objects exist between the scorer and the encoder.
            schedule.use_slab()

            def execute_ready(ready: "list[tuple[int, Gate]] | None" = None) -> bool:
                return self._execute_ready_gates_flat(
                    dag, flat_mirror, schedule, pending_1q, stats, ready
                )

        else:

            def execute_ready(ready: "list[tuple[int, Gate]] | None" = None) -> bool:
                return self._execute_ready_gates(dag, state, schedule, pending_1q, stats, ready)


        last_swap: GenericSwap | None = None
        swaps_since_progress = 0
        # The frontier (and its lookahead slice) only changes when a gate
        # executes; between executions the scheduler may apply many
        # generic swaps against the same frontier, so both are cached
        # under the DAG's revision counter.
        frontier: list[tuple[int, Gate]] = []
        frontier_pairs: list[tuple[int, int]] = []
        lookahead_pairs: list[tuple[int, int]] | None = None
        lookahead_stale = False
        frontier_revision = -1

        execute_ready()
        while not dag.is_done:
            if frontier_revision != dag.revision:
                frontier = dag.frontier_items()
                frontier_pairs = [(gate.qubits[0], gate.qubits[1]) for _, gate in frontier]
                lookahead_pairs = None
                lookahead_stale = self.config.lookahead_depth > 0
                frontier_revision = dag.revision
            candidates = generate_candidates(state, frontier_pairs)
            if last_swap is not None:
                if isinstance(candidates, FlatCandidateBatch):
                    candidates.drop_reversing(last_swap)
                else:
                    non_reversing = [c for c in candidates if not c.reverses(last_swap)]
                    if non_reversing:
                        candidates = non_reversing

            if not candidates or swaps_since_progress >= self.config.stall_limit:
                self._force_route(schedule, state, frontier[0][1], stats, caches)
                stats.forced_routes += 1
                swaps_since_progress = 0
                last_swap = None
                execute_ready(frontier)
            else:
                # The lookahead slice is only consumed when candidates are
                # actually scored; singleton iterations skip the BFS.
                if lookahead_stale and len(candidates) > 1:
                    lookahead_pairs = dag.lookahead_pairs(
                        self.config.lookahead_depth, skip_frontier=True
                    )
                    lookahead_stale = False
                best = self._select_candidate(
                    state,
                    candidates,
                    frontier_pairs,
                    lookahead_pairs,
                    decay,
                    stats,
                    caches,
                    frontier_revision,
                )
                self._apply_candidate(schedule, state, best, caches)
                decay.advance()
                decay.record(best.moved_qubits)
                last_swap = best
                swaps_since_progress += 1
                stats.generic_swap_iterations += 1
                if stats.generic_swap_iterations > self.config.max_generic_swaps:
                    raise SchedulingError(
                        "scheduler exceeded the generic-swap budget "
                        f"({self.config.max_generic_swaps}); the circuit/device combination "
                        "appears unroutable"
                    )
                # An intra-trap SWAP cannot co-locate a waiting gate (trap
                # membership is unchanged), and a shuttle can only
                # co-locate gates acting on the one ion it moved.
                if best.kind is not GenericSwapKind.SWAP_GATE:
                    moved = best.qubit_a
                    affected = [item for item in frontier if moved in item[1].qubits]
                    if affected and execute_ready(affected):
                        swaps_since_progress = 0

        for gate in trailing_1q:
            self._emit_single_qubit_gate(schedule, state, gate)
        schedule.validate_against(dag.num_nodes)
        return schedule, state, stats

    # ------------------------------------------------------------------
    # gate execution
    # ------------------------------------------------------------------
    def _check_initial_state(self, circuit: QuantumCircuit, state: DeviceState) -> None:
        missing = [q for q in range(circuit.num_qubits) if not state.is_placed(q)]
        if missing:
            raise SchedulingError(
                f"initial mapping does not place qubits {missing[:10]} (and possibly more)"
            )
        if state.device is not self.device and state.device.name != self.device.name:
            raise SchedulingError("the initial state was built for a different device")

    def _execute_ready_gates(
        self,
        dag: DependencyDAG,
        state: DeviceState,
        schedule: Schedule,
        pending_1q: dict[int, list[Gate]],
        stats: SchedulerStatistics,
        ready: "list[tuple[int, Gate]] | None" = None,
    ) -> bool:
        """Execute every frontier gate whose operands share a trap.

        Executing a gate never moves an ion, so a gate found split across
        traps stays split for the whole call: each round only the gates
        that became ready in the previous round need a co-location check,
        instead of rescanning the entire frontier after every execution.
        Execution order (ready gates in program order, round by round) is
        unchanged from the full-rescan formulation.

        ``ready`` lets the caller pass its revision-cached frontier list
        (skipping a rebuild), or a prefiltered slice of it — after a
        shuttle only the gates acting on the moved ion can have become
        co-located, and the caller skips the call entirely when that
        slice is empty.
        """
        executed_any = False
        locations = state.locations
        positions = state.positions
        chains = state.chains
        append = schedule.appender()
        pop_pending = pending_1q.pop
        make_gate_op = GateOperation
        executed = 0
        if ready is None:
            ready = dag.frontier_items()
        retire = dag.retire
        while ready:
            if len(ready) == 1:
                # The overwhelmingly common round on serial circuits: one
                # ready gate whose execution enables the next.  Same
                # semantics as the general round below, minus the batch
                # machinery.
                index, gate = ready[0]
                qubit_a, qubit_b = gate.qubits
                trap = locations[qubit_a]
                if trap != locations[qubit_b]:
                    break
                previous_qubit = -1
                for gate_1q in pop_pending(index, ()):
                    qubit_1q = gate_1q.qubits[0]
                    if qubit_1q != previous_qubit:
                        trap_1q = locations[qubit_1q]
                        chain_length_1q = len(chains[trap_1q])
                        previous_qubit = qubit_1q
                    append(make_gate_op(gate_1q, trap_1q, chain_length_1q))
                separation = positions[qubit_a] - positions[qubit_b]
                if separation < 0:
                    separation = -separation
                append(
                    make_gate_op(
                        gate, trap, len(chains[trap]), separation - 1 if separation > 1 else 0
                    )
                )
                executed += 1
                executed_any = True
                ready = retire(index)
                if len(ready) > 1:
                    # (index, gate) pairs sort by the unique index.
                    ready.sort()
                continue
            retired: list[int] = []
            for index, gate in ready:
                qubit_a, qubit_b = gate.qubits
                trap = locations[qubit_a]
                if trap != locations[qubit_b]:
                    continue
                previous_qubit = -1
                for gate_1q in pop_pending(index, ()):
                    qubit_1q = gate_1q.qubits[0]
                    if qubit_1q != previous_qubit:
                        trap_1q = locations[qubit_1q]
                        chain_length_1q = len(chains[trap_1q])
                        previous_qubit = qubit_1q
                    append(make_gate_op(gate_1q, trap_1q, chain_length_1q))
                separation = positions[qubit_a] - positions[qubit_b]
                if separation < 0:
                    separation = -separation
                append(
                    make_gate_op(
                        gate, trap, len(chains[trap]), separation - 1 if separation > 1 else 0
                    )
                )
                retired.append(index)
                executed_any = True
            if not retired:
                break
            executed += len(retired)
            # Retiring after the round's emissions is equivalent: gate
            # execution never moves an ion, so later co-location checks
            # in the same round are unaffected.
            newly_ready = dag.retire_many(retired)
            # (index, gate) pairs sort by the unique index — no key needed.
            newly_ready.sort()
            ready = newly_ready
        stats.executed_two_qubit_gates += executed
        return executed_any

    def _execute_ready_gates_flat(
        self,
        dag: DependencyDAG,
        flat: FlatState,
        schedule: Schedule,
        pending_1q: dict[int, list[Gate]],
        stats: SchedulerStatistics,
        ready: "list[tuple[int, Gate]] | None" = None,
    ) -> bool:
        """:meth:`_execute_ready_gates` off the flat-array mirror.

        Gate execution never moves an ion, so this path only *reads* —
        trap membership, chain length and ion separation come straight
        off the ``qubit_trap`` / ``qubit_pos`` / ``length`` vectors
        instead of the canonical state's dict-of-list bookkeeping.
        Emission goes straight into the schedule's columnar slab — plain
        integer appends, no :class:`GateOperation` objects.  Emission
        order and every operation field are identical to the reference
        method (the mirror tracks the state move-for-move).
        """
        executed_any = False
        qtrap = flat.qubit_trap
        qpos = flat.qubit_pos
        length = flat.length
        append_gate = schedule.use_slab().append_gate
        pop_pending = pending_1q.pop
        code_1q = KIND_CODE_GATE_1Q
        code_2q = KIND_CODE_GATE_2Q
        executed = 0
        if ready is None:
            ready = dag.frontier_items()
        retire = dag.retire
        while ready:
            if len(ready) == 1:
                index, gate = ready[0]
                qubit_a, qubit_b = gate.qubits
                trap = qtrap[qubit_a]
                if trap != qtrap[qubit_b]:
                    break
                previous_qubit = -1
                for gate_1q in pop_pending(index, ()):
                    qubit_1q = gate_1q.qubits[0]
                    if qubit_1q != previous_qubit:
                        trap_1q = qtrap[qubit_1q]
                        chain_length_1q = length[trap_1q]
                        previous_qubit = qubit_1q
                    append_gate(code_1q, gate_1q, trap_1q, chain_length_1q, 0)
                separation = qpos[qubit_a] - qpos[qubit_b]
                if separation < 0:
                    separation = -separation
                append_gate(
                    code_2q, gate, trap, length[trap], separation - 1 if separation > 1 else 0
                )
                executed += 1
                executed_any = True
                ready = retire(index)
                if len(ready) > 1:
                    ready.sort()
                continue
            retired: list[int] = []
            for index, gate in ready:
                qubit_a, qubit_b = gate.qubits
                trap = qtrap[qubit_a]
                if trap != qtrap[qubit_b]:
                    continue
                previous_qubit = -1
                for gate_1q in pop_pending(index, ()):
                    qubit_1q = gate_1q.qubits[0]
                    if qubit_1q != previous_qubit:
                        trap_1q = qtrap[qubit_1q]
                        chain_length_1q = length[trap_1q]
                        previous_qubit = qubit_1q
                    append_gate(code_1q, gate_1q, trap_1q, chain_length_1q, 0)
                separation = qpos[qubit_a] - qpos[qubit_b]
                if separation < 0:
                    separation = -separation
                append_gate(
                    code_2q, gate, trap, length[trap], separation - 1 if separation > 1 else 0
                )
                retired.append(index)
                executed_any = True
            if not retired:
                break
            executed += len(retired)
            newly_ready = dag.retire_many(retired)
            newly_ready.sort()
            ready = newly_ready
        stats.executed_two_qubit_gates += executed
        return executed_any

    def _emit_single_qubit_gate(self, schedule: Schedule, state: DeviceState, gate: Gate) -> None:
        trap = state.locations[gate.qubits[0]]
        chain_length = max(state.chain_length(trap), 1)
        slab = schedule.slab
        if slab is not None:
            slab.append_gate(KIND_CODE_GATE_1Q, gate, trap, chain_length, 0)
        else:
            schedule.append(GateOperation(gate, trap, chain_length))

    # ------------------------------------------------------------------
    # candidate selection and application
    # ------------------------------------------------------------------
    def _select_candidate(
        self,
        state: DeviceState,
        candidates: "list[GenericSwap] | FlatCandidateBatch",
        frontier_pairs: list[tuple[int, int]],
        lookahead_pairs: list[tuple[int, int]] | None,
        decay: DecayTracker,
        stats: SchedulerStatistics,
        caches: "FlatRun | IncrementalRun | None",
        revision: int = -1,
    ) -> GenericSwap:
        if isinstance(caches, FlatRun):
            if len(candidates) == 1:
                # Argmin of a singleton: same shortcut as below, but the
                # flat batch materialises the one candidate on demand.
                stats.candidate_evaluations += 1
                return candidates.build(0)
            scorer = caches.scorer
            scorer.begin_iteration(
                frontier_pairs,
                decay,
                lookahead_pairs,
                self.config.lookahead_weight,
                revision,
            )
            return scorer.select(candidates, stats)
        best_candidate = candidates[0]
        if len(candidates) == 1:
            # The argmin of a singleton needs no H evaluation; the
            # reference loop also selects candidates[0] and counts one
            # evaluation, so statistics stay identical.
            stats.candidate_evaluations += 1
            return best_candidate
        best_score = float("inf")
        if caches is not None:
            scorer = caches.scorer
            scorer.begin_iteration(
                frontier_pairs,
                decay,
                lookahead_pairs,
                self.config.lookahead_weight,
                revision,
            )
            for candidate in candidates:
                score = scorer.score(state, candidate)
                stats.candidate_evaluations += 1
                if score < best_score - 1e-12:
                    best_score = score
                    best_candidate = candidate
            return best_candidate
        for candidate in candidates:
            score = self.cost.swap_score(
                state,
                candidate,
                frontier_pairs,
                decay,
                lookahead_pairs=lookahead_pairs,
                lookahead_weight=self.config.lookahead_weight,
            )
            stats.candidate_evaluations += 1
            if score < best_score - 1e-12:
                best_score = score
                best_candidate = candidate
        return best_candidate

    def _apply_candidate(
        self,
        schedule: Schedule,
        state: DeviceState,
        candidate: GenericSwap,
        caches: "FlatRun | IncrementalRun | None" = None,
    ) -> None:
        locations = state.locations
        chains = state.chains
        # In slab mode (the flat backend) the applied move is emitted as
        # plain scalars into the columnar slab; the classic backends
        # construct the record objects as before.  Field values are
        # computed identically either way.
        slab = schedule.slab
        if candidate.kind is GenericSwapKind.SWAP_GATE:
            assert candidate.qubit_b is not None
            trap = locations[candidate.qubit_a]
            positions = state.positions
            separation = positions[candidate.qubit_a] - positions[candidate.qubit_b]
            if separation < 0:
                separation = -separation
            if slab is not None:
                slab.append_swap(
                    trap,
                    candidate.qubit_a,
                    candidate.qubit_b,
                    len(chains[trap]),
                    separation - 1 if separation > 1 else 0,
                )
            else:
                schedule.append(
                    SwapOperation(
                        trap=trap,
                        qubit_a=candidate.qubit_a,
                        qubit_b=candidate.qubit_b,
                        chain_length=len(chains[trap]),
                        ion_separation=separation - 1 if separation > 1 else 0,
                    )
                )
            state.unchecked_swap(candidate.qubit_a, candidate.qubit_b)
        else:
            assert candidate.target_trap is not None
            source_trap = locations[candidate.qubit_a]
            connection = self.device.connection_between(source_trap, candidate.target_trap)
            source_before = len(chains[source_trap])
            # The checked shuttle validates end position and capacity; a
            # selected candidate was generated legal against this state.
            state.unchecked_shuttle(candidate.qubit_a, source_trap, candidate.target_trap)
            if slab is not None:
                slab.append_shuttle(
                    candidate.qubit_a,
                    source_trap,
                    candidate.target_trap,
                    connection.segments,
                    connection.junctions,
                    source_before,
                    len(chains[candidate.target_trap]),
                )
            else:
                schedule.append(
                    ShuttleOperation(
                        qubit=candidate.qubit_a,
                        source_trap=source_trap,
                        target_trap=candidate.target_trap,
                        segments=connection.segments,
                        junctions=connection.junctions,
                        source_chain_length=source_before,
                        target_chain_length=len(chains[candidate.target_trap]),
                    )
                )
        if caches is not None:
            caches.notify_applied(candidate)

    # ------------------------------------------------------------------
    # stall-breaking fallback
    # ------------------------------------------------------------------
    def _force_route(
        self,
        schedule: Schedule,
        state: DeviceState,
        gate: Gate,
        stats: SchedulerStatistics,
        caches: "FlatRun | IncrementalRun | None" = None,
    ) -> None:
        """Deterministically co-locate the operands of ``gate``."""
        qubit_a, qubit_b = gate.qubits
        safety = 4 * self.device.num_traps * max(t.capacity for t in self.device.traps) + 16
        steps = 0
        while not state.same_trap(qubit_a, qubit_b):
            steps += 1
            if steps > safety:
                raise SchedulingError(
                    f"force-routing gate {gate} did not converge; the device appears "
                    "too congested to route"
                )
            source = state.trap_of(qubit_a)
            target = state.trap_of(qubit_b)
            next_trap = self.device.next_hop(source, target)
            departing_end = state.facing_end(source, next_trap)
            # Free the destination before positioning the qubit: an eviction
            # may merge an ion into this trap's departing end and displace it.
            if not state.has_space(next_trap):
                self._make_space(schedule, state, next_trap, protected=(qubit_a,), caches=caches)
            if not state.is_at_end(qubit_a, departing_end):
                end_qubit = state.end_qubit(source, departing_end)
                assert end_qubit is not None and end_qubit != qubit_a
                self._apply_candidate(
                    schedule,
                    state,
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=qubit_a,
                        qubit_b=end_qubit,
                        trap=source,
                        target_trap=None,
                        weight=self.rules.swap_gate_weight(
                            max(state.ion_separation(qubit_a, end_qubit) + 1, 1)
                        ),
                    ),
                    caches,
                )
            connection = self.device.connection_between(source, next_trap)
            self._apply_candidate(
                schedule,
                state,
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=qubit_a,
                    qubit_b=None,
                    trap=source,
                    target_trap=next_trap,
                    weight=self.rules.shuttle_weight(connection.junctions),
                ),
                caches,
            )

    def _make_space(
        self,
        schedule: Schedule,
        state: DeviceState,
        trap_id: int,
        protected: tuple[int, ...],
        caches: "FlatRun | IncrementalRun | None" = None,
    ) -> None:
        """Free one slot in ``trap_id`` by pushing ions towards the nearest trap with room."""
        path = self._path_to_free_slot(state, trap_id)
        # Push ions backwards along the path: the last hop moves first.
        for source, target in reversed(list(zip(path, path[1:]))):
            end = state.facing_end(source, target)
            victim = state.end_qubit(source, end)
            if victim is None:
                continue
            if victim in protected:
                # Move the protected qubit away from the departing end first.
                chain = state.chain(source)
                replacement = next((q for q in chain if q not in protected), None)
                if replacement is None:
                    raise SchedulingError(
                        f"cannot free a slot in trap {source}: every ion is protected"
                    )
                self._apply_candidate(
                    schedule,
                    state,
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=victim,
                        qubit_b=replacement,
                        trap=source,
                        target_trap=None,
                        weight=self.rules.swap_gate_weight(1),
                    ),
                    caches,
                )
                victim = state.end_qubit(source, end)
                assert victim is not None
            connection = self.device.connection_between(source, target)
            self._apply_candidate(
                schedule,
                state,
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=victim,
                    qubit_b=None,
                    trap=source,
                    target_trap=target,
                    weight=self.rules.shuttle_weight(connection.junctions),
                ),
                caches,
            )

    def _path_to_free_slot(self, state: DeviceState, trap_id: int) -> list[int]:
        """Shortest hop path from ``trap_id`` to the nearest trap with a free slot."""
        if state.has_space(trap_id):
            return [trap_id]
        visited = {trap_id}
        frontier = [[trap_id]]
        while frontier:
            next_frontier: list[list[int]] = []
            for path in frontier:
                for neighbour in self.device.neighbors(path[-1]):
                    if neighbour in visited:
                        continue
                    visited.add(neighbour)
                    new_path = path + [neighbour]
                    if state.has_space(neighbour):
                        return new_path
                    next_frontier.append(new_path)
            frontier = next_frontier
        raise SchedulingError(
            "every trap on the device is full; at least one free slot is required for routing"
        )
