"""Heuristic cost functions of the S-SYNC scheduler (Eqs. 1–3).

``score(g)`` estimates the cost of making gate ``g`` executable from the
current (or a hypothetical) qubit placement: the weighted distance between
its two operands in the static topology graph plus a penalty counting
fully occupied traps (a full trap cannot receive a shuttled ion and
therefore risks blocking routing).

``H(swap) = min_g { decay(g) * score(g) } + w(swap)`` scores one candidate
generic swap; the scheduler picks the candidate with the lowest ``H``.
The decay factor inflates the score of gates whose qubits were moved
recently, discouraging the search from repeatedly shuffling the same
ions (paper §3.3 and §4.4: δ defaults to 0.001, reset after 5 idle
iterations).

:meth:`HeuristicCost.swap_score` here is the *reference* evaluator — a
scratch state copy and a full rescore per candidate.  The production
hot path delta-evaluates the same quantities bit-identically
(:mod:`repro.core.incremental`); the randomized parity suite holds the
two together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.generic_swap import GenericSwap, GenericSwapKind
from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights


@dataclass
class DecayTracker:
    """Per-qubit decay bookkeeping (paper §3.3).

    A qubit that took part in a generic swap within the last
    ``reset_interval`` scheduler iterations contributes a factor of
    ``1 + delta`` to the score of any frontier gate touching it; after
    ``reset_interval`` iterations without further involvement the factor
    resets to 1.
    """

    delta: float = 0.001
    reset_interval: int = 5
    _last_touched: dict[int, int] = field(default_factory=dict)
    _iteration: int = 0

    def __post_init__(self) -> None:
        if self.delta < 0:
            raise SchedulingError("the decay delta cannot be negative")
        if self.reset_interval < 1:
            raise SchedulingError("the decay reset interval must be at least 1")

    def advance(self) -> None:
        """Move to the next scheduler iteration."""
        self._iteration += 1

    def record(self, qubits: tuple[int, ...]) -> None:
        """Mark qubits as touched by the generic swap applied this iteration."""
        for qubit in qubits:
            self._last_touched[qubit] = self._iteration

    def factor(self, qubits: tuple[int, ...]) -> float:
        """The decay multiplier for a gate acting on ``qubits``."""
        for qubit in qubits:
            last = self._last_touched.get(qubit)
            if last is not None and self._iteration - last < self.reset_interval:
                return 1.0 + self.delta
        return 1.0

    def factors(self, pairs: list[tuple[int, int]]) -> list[float]:
        """:meth:`factor` for many gates at once (one scheduler iteration).

        Bulk variant for the incremental scorer: identical values, one
        call per iteration instead of one per gate.
        """
        last_touched = self._last_touched
        if not last_touched:
            return [1.0] * len(pairs)
        get = last_touched.get
        threshold = self._iteration - self.reset_interval
        inflated = 1.0 + self.delta
        result: list[float] = []
        append = result.append
        for qubit_a, qubit_b in pairs:
            last = get(qubit_a)
            if last is not None and last > threshold:
                append(inflated)
                continue
            last = get(qubit_b)
            append(inflated if last is not None and last > threshold else 1.0)
        return result

    def reset(self) -> None:
        """Forget all decay history."""
        self._last_touched.clear()
        self._iteration = 0


class HeuristicCost:
    """Distance + penalty scoring over the chain occupancy state."""

    def __init__(self, weights: GraphWeights | None = None) -> None:
        self.weights = weights or GraphWeights()

    # ------------------------------------------------------------------
    # Eq. 2: score(g)
    # ------------------------------------------------------------------
    def pair_distance(self, state: DeviceState, qubit_a: int, qubit_b: int) -> float:
        """Weighted routing distance between two qubits (the ``dis`` term).

        Same trap: ``inner_weight * chain distance`` (the cost of the SWAP
        that would make them adjacent, also a proxy for gate duration).
        Different traps: cost of SWAPping each operand to the chain end
        facing the other trap plus the shuttle-weighted trap distance.
        """
        trap_a = state.trap_of(qubit_a)
        trap_b = state.trap_of(qubit_b)
        inner = self.weights.inner_weight
        if trap_a == trap_b:
            return inner * (state.ion_separation(qubit_a, qubit_b) + 1)
        device = state.device
        # next_hop/penultimate_hop read the precomputed shortest-path
        # matrices — no path-list construction in this innermost loop.
        end_a = state.facing_end(trap_a, device.next_hop(trap_a, trap_b))
        end_b = state.facing_end(trap_b, device.penultimate_hop(trap_a, trap_b))
        edge_cost = inner * (state.distance_to_end(qubit_a, end_a) + state.distance_to_end(qubit_b, end_b))
        shuttle_cost = self.weights.shuttle_weight * device.trap_distance(trap_a, trap_b)
        return edge_cost + shuttle_cost

    def blocked_trap_penalty(self, state: DeviceState) -> float:
        """The Pen term: number of traps with no free slot."""
        return float(state.full_trap_count())

    def gate_score(self, state: DeviceState, qubit_a: int, qubit_b: int) -> float:
        """score(g) = dis(q1 → q2) + Pen (Eq. 2)."""
        return self.pair_distance(state, qubit_a, qubit_b) + self.blocked_trap_penalty(state)

    # ------------------------------------------------------------------
    # Eq. 1: H(swap)
    # ------------------------------------------------------------------
    def swap_score(
        self,
        state: DeviceState,
        candidate: GenericSwap,
        frontier_pairs: list[tuple[int, int]],
        decay: DecayTracker,
        lookahead_pairs: list[tuple[int, int]] | None = None,
        lookahead_weight: float = 0.5,
    ) -> float:
        """H(swap) for one candidate, evaluated on a hypothetical state.

        The candidate is applied to a scratch copy of ``state`` (the
        paper's ``π_temp`` / ``space_temp``), every frontier gate is
        scored under that placement, and the minimum decayed score plus
        the candidate's own weight is returned.  An optional lookahead
        term averages the scores of near-future gates, weighted by
        ``lookahead_weight`` (0 disables it and matches the paper's
        formulation exactly).

        The lookahead average is defined in *base-plus-deltas* form: the
        in-order sum of the gate distances under the **current**
        placement, plus the (rounded) per-gate difference the candidate
        introduces, accumulated in gate-list order.  A gate whose
        distance is unchanged contributes an exact ``0.0``, so the value
        is independent of *which* superset of the truly-changed gates an
        implementation inspects — this is the property that lets the
        fast backends combine a cached base sum with a handful of
        deltas and still be bit-identical to this reference.
        """
        if not frontier_pairs:
            raise SchedulingError("H(swap) needs at least one waiting gate")
        scratch = state.copy()
        apply_generic_swap(scratch, candidate)
        penalty = self.blocked_trap_penalty(scratch)
        best = float("inf")
        for qubit_a, qubit_b in frontier_pairs:
            score = self.pair_distance(scratch, qubit_a, qubit_b) + penalty
            score *= decay.factor((qubit_a, qubit_b))
            if score < best:
                best = score
        total = best + candidate.weight
        if lookahead_pairs and lookahead_weight > 0.0:
            future = 0.0
            for qubit_a, qubit_b in lookahead_pairs:
                future += self.pair_distance(state, qubit_a, qubit_b)
            for qubit_a, qubit_b in lookahead_pairs:
                after = self.pair_distance(scratch, qubit_a, qubit_b)
                before = self.pair_distance(state, qubit_a, qubit_b)
                if after != before:
                    future += after - before
            total += lookahead_weight * (future / len(lookahead_pairs))
        return total


def apply_generic_swap(state: DeviceState, candidate: GenericSwap) -> None:
    """Mutate ``state`` according to one generic swap."""
    if candidate.kind is GenericSwapKind.SWAP_GATE:
        assert candidate.qubit_b is not None
        state.swap_qubits(candidate.qubit_a, candidate.qubit_b)
    else:
        assert candidate.target_trap is not None
        state.shuttle(candidate.qubit_a, candidate.target_trap)
