"""S-SYNC core: device state, generic swaps, heuristics, scheduler, compiler."""

from repro.core.compiler import SSyncCompiler, SSyncConfig, compile_circuit
from repro.core.flatstate import (
    FlatBatchScorer,
    FlatCandidateBatch,
    FlatCandidates,
    FlatRun,
    FlatState,
)
from repro.core.generic_swap import GenericSwap, GenericSwapKind, GenericSwapRules
from repro.core.heuristic import DecayTracker, HeuristicCost, apply_generic_swap
from repro.core.incremental import (
    CandidateCache,
    IncrementalRun,
    IncrementalSwapScorer,
    TrapVersions,
)
from repro.core.mapping import (
    EvenDividedMapper,
    GatheringMapper,
    InitialMapper,
    STAMapper,
    get_mapper,
)
from repro.core.result import CompilationResult
from repro.core.scheduler import (
    SCHEDULER_BACKENDS,
    GenericSwapScheduler,
    SchedulerConfig,
    SchedulerStatistics,
)
from repro.core.state import LEFT, RIGHT, DeviceState

__all__ = [
    "CandidateCache",
    "CompilationResult",
    "DecayTracker",
    "DeviceState",
    "EvenDividedMapper",
    "FlatBatchScorer",
    "FlatCandidateBatch",
    "FlatCandidates",
    "FlatRun",
    "FlatState",
    "GatheringMapper",
    "GenericSwap",
    "GenericSwapKind",
    "GenericSwapRules",
    "GenericSwapScheduler",
    "HeuristicCost",
    "IncrementalRun",
    "IncrementalSwapScorer",
    "InitialMapper",
    "LEFT",
    "RIGHT",
    "SCHEDULER_BACKENDS",
    "SSyncCompiler",
    "SSyncConfig",
    "STAMapper",
    "SchedulerConfig",
    "SchedulerStatistics",
    "TrapVersions",
    "apply_generic_swap",
    "compile_circuit",
    "get_mapper",
]
