"""Generic swap operations — the paper's unified node-interchange primitive.

Section 3.2 folds every QCCD-specific operation (SWAP gate, intra-trap
reordering, split/move/merge shuttling) into a single *generic swap*: an
interchange of two nodes of the static topology graph.  In the chain
occupancy model used by this implementation, a generic swap is one of:

* ``SWAP_GATE`` — exchange two ions inside one trap (one SWAP gate =
  three two-qubit gates).  Graph weight: ``inner_weight * distance``.
* ``SHUTTLE`` — move an ion sitting at the chain end facing a connected
  trap into that trap (split + move + merge).  Graph weight:
  ``shuttle_weight * (junctions + 1)``.

The candidate generator also proposes *eviction* shuttles (moving an
unrelated ion out of a full destination trap) because a blocked trap
would otherwise deadlock the router — this corresponds to the paper's
Pen term discouraging fully occupied traps.
"""

from __future__ import annotations

from enum import Enum

from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights


class GenericSwapKind(str, Enum):
    """The two concrete interchange families of the chain model."""

    SWAP_GATE = "swap_gate"
    SHUTTLE = "shuttle"


class GenericSwap:
    """One candidate node interchange.

    ``qubit_a`` is always a program qubit.  For ``SWAP_GATE`` candidates
    ``qubit_b`` is the other ion; for ``SHUTTLE`` candidates ``qubit_b``
    is ``None`` and ``target_trap`` names the receiving trap.

    A plain ``__slots__`` value class (the candidate generator creates a
    few per scheduler iteration, so construction stays cheap); equality
    and hashing are field-wise, as with the frozen dataclass it
    replaces, and instances are immutable by convention.
    """

    __slots__ = ("kind", "qubit_a", "qubit_b", "trap", "target_trap", "weight")

    def __init__(
        self,
        kind: GenericSwapKind,
        qubit_a: int,
        qubit_b: "int | None",
        trap: int,
        target_trap: "int | None",
        weight: float,
    ) -> None:
        if kind is GenericSwapKind.SWAP_GATE:
            if qubit_b is None or target_trap is not None:
                raise SchedulingError("a SWAP_GATE candidate needs two qubits and no target trap")
            if qubit_a == qubit_b:
                raise SchedulingError("a SWAP_GATE candidate needs two distinct qubits")
        else:
            if qubit_b is not None or target_trap is None:
                raise SchedulingError("a SHUTTLE candidate needs one qubit and a target trap")
            if trap == target_trap:
                raise SchedulingError("a SHUTTLE candidate must change traps")
        if weight <= 0:
            raise SchedulingError("generic swap weights must be positive")
        self.kind = kind
        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.trap = trap
        self.target_trap = target_trap
        self.weight = weight

    @classmethod
    def unchecked(
        cls,
        kind: GenericSwapKind,
        qubit_a: int,
        qubit_b: "int | None",
        trap: int,
        target_trap: "int | None",
        weight: float,
    ) -> "GenericSwap":
        """Construct without field validation (hot-path fast constructor).

        The flat candidate generator emits only shapes that the checked
        ``__init__`` would accept (it replays the rule set of
        :meth:`GenericSwapRules.candidates_for_qubit`), so the argument
        validation is skipped entirely.
        """
        self = object.__new__(cls)
        self.kind = kind
        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.trap = trap
        self.target_trap = target_trap
        self.weight = weight
        return self

    def _fields(self) -> tuple:
        return (self.kind, self.qubit_a, self.qubit_b, self.trap, self.target_trap, self.weight)

    def __eq__(self, other: object) -> bool:
        if type(other) is not GenericSwap:
            return NotImplemented
        return self._fields() == other._fields()

    def __hash__(self) -> int:
        return hash(self._fields())

    def __repr__(self) -> str:
        return (
            f"GenericSwap(kind={self.kind!r}, qubit_a={self.qubit_a!r}, "
            f"qubit_b={self.qubit_b!r}, trap={self.trap!r}, "
            f"target_trap={self.target_trap!r}, weight={self.weight!r})"
        )

    @property
    def moved_qubits(self) -> tuple[int, ...]:
        """The program qubits whose position changes if this swap is applied."""
        if self.qubit_b is None:
            return (self.qubit_a,)
        return (self.qubit_a, self.qubit_b)

    @property
    def touched_traps(self) -> tuple[int, ...]:
        """The traps whose chains change when this swap is applied.

        A SWAP gate reorders one chain; a shuttle changes the source and
        the target chain (and possibly their fullness).  Everything else
        on the device is untouched — this is what makes delta evaluation
        of ``H(swap)`` possible.
        """
        if self.target_trap is None:
            return (self.trap,)
        return (self.trap, self.target_trap)

    def apply_to(self, state: DeviceState) -> None:
        """Apply this swap to ``state`` via the unchecked fast paths.

        Candidates are generated legal against the state they score, so
        the legality checks of :meth:`DeviceState.shuttle` are skipped.
        The applied move is undone by :meth:`undo` — both primitives are
        their own inverse in the chain model, so no extra undo record is
        needed beyond the candidate itself.
        """
        if self.kind is GenericSwapKind.SWAP_GATE:
            state.unchecked_swap(self.qubit_a, self.qubit_b)  # type: ignore[arg-type]
        else:
            state.unchecked_shuttle(self.qubit_a, self.trap, self.target_trap)  # type: ignore[arg-type]

    def undo(self, state: DeviceState) -> None:
        """Exactly revert a preceding :meth:`apply_to` on ``state``.

        The SWAP exchanges the same two ions back; the shuttle runs in
        reverse (the ion re-enters its old chain at the end it left
        from), restoring chains, positions and fullness counters
        bit-for-bit.
        """
        if self.kind is GenericSwapKind.SWAP_GATE:
            state.unchecked_swap(self.qubit_a, self.qubit_b)  # type: ignore[arg-type]
        else:
            state.unchecked_shuttle(self.qubit_a, self.target_trap, self.trap)  # type: ignore[arg-type]

    def reverses(self, other: "GenericSwap | None") -> bool:
        """True when applying this swap right after ``other`` undoes it."""
        if other is None or self.kind != other.kind:
            return False
        if self.kind is GenericSwapKind.SWAP_GATE:
            return {self.qubit_a, self.qubit_b} == {other.qubit_a, other.qubit_b}
        return (
            self.qubit_a == other.qubit_a
            and self.trap == other.target_trap
            and self.target_trap == other.trap
        )


class GenericSwapRules:
    """Candidate generation and weights for generic swaps (§3.1 rules 1–4)."""

    def __init__(self, weights: GraphWeights | None = None) -> None:
        self.weights = weights or GraphWeights()
        self._tables_device: "object | None" = None
        self._next_hop: list[list[int]] = []
        self._connections: list = []

    def _tables(self, device) -> "tuple[list[list[int]], list]":
        """Per-device memo of the next-hop and connection tables.

        ``device.routing_tables``/``connection_matrix`` build a fresh
        tuple per access; the candidate generator runs per scheduler
        iteration, so the rows are bound once per device.
        """
        if self._tables_device is not device:
            self._tables_device = device
            self._next_hop = device.routing_tables[1]
            self._connections = device.connection_matrix
        return self._next_hop, self._connections

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def swap_gate_weight(self, chain_distance: int) -> float:
        """Weight of an intra-trap SWAP across ``chain_distance`` positions."""
        if chain_distance < 1:
            raise SchedulingError("a SWAP candidate needs a positive chain distance")
        return self.weights.inner_weight * chain_distance

    def shuttle_weight(self, junctions: int) -> float:
        """Weight of a shuttle crossing ``junctions`` junctions (paper: j+1)."""
        if junctions < 0:
            raise SchedulingError("junction counts cannot be negative")
        return self.weights.shuttle_weight * (1 + junctions)

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def candidates_for_qubit(
        self, state: DeviceState, qubit: int, goal_trap: int
    ) -> list[GenericSwap]:
        """Generic swaps that move ``qubit`` towards ``goal_trap``.

        The set contains:

        * a SWAP with the ion at the departing chain end (brings the
          qubit to the edge in one long-range SWAP),
        * SWAPs with the ions adjacent to the qubit (finer-grained moves
          the heuristic can prefer when the long-range SWAP is costly),
        * a SHUTTLE to the next trap on the cheapest route when the
          qubit already sits at the departing end and the next trap has
          room,
        * eviction SHUTTLEs that free up the next trap when it is full.
        """
        source_trap = state.locations[qubit]
        if source_trap == goal_trap:
            return []
        next_hop, connection_matrix = self._tables(state.device)
        next_trap = next_hop[source_trap][goal_trap]
        # Departing chain end: the right end (last index) faces larger
        # trap ids, per the DeviceState.facing_end convention.
        towards_right = next_trap > source_trap
        candidates: list[GenericSwap] = []

        chain = state.chains[source_trap]
        length = len(chain)
        index = state.positions[qubit]
        inner_weight = self.weights.inner_weight
        # SWAP with the ion at the departing end.
        end_index = length - 1 if towards_right else 0
        end_qubit = chain[end_index] if length else None
        if end_qubit is not None and end_qubit != qubit:
            distance = end_index - index if towards_right else index
            candidates.append(
                GenericSwap(
                    GenericSwapKind.SWAP_GATE,
                    qubit_a=qubit,
                    qubit_b=end_qubit,
                    trap=source_trap,
                    target_trap=None,
                    weight=inner_weight * distance,
                )
            )
        # SWAP with the immediate neighbour towards the departing end.  Moves
        # away from that end never shorten the route for this qubit, so they
        # are not proposed here (another waiting gate proposes them if they
        # help it instead), which keeps the search from shuffling ions back
        # and forth without progress.
        neighbour_index = index + 1 if towards_right else index - 1
        if 0 <= neighbour_index < length:
            other = chain[neighbour_index]
            if other != qubit and (end_qubit is None or other != end_qubit):
                candidates.append(
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=qubit,
                        qubit_b=other,
                        trap=source_trap,
                        target_trap=None,
                        weight=inner_weight,
                    )
                )
        # SHUTTLE toward the next trap on the route.
        if index == end_index:
            connection = connection_matrix[source_trap][next_trap]
            assert connection is not None  # next_hop implies a direct edge
            if state.has_space(next_trap):
                candidates.append(
                    GenericSwap(
                        GenericSwapKind.SHUTTLE,
                        qubit_a=qubit,
                        qubit_b=None,
                        trap=source_trap,
                        target_trap=next_trap,
                        weight=self.weights.shuttle_weight * (1 + connection.junctions),
                    )
                )
            else:
                candidates.extend(self.eviction_candidates(state, next_trap, exclude=(qubit,)))
        return candidates

    def eviction_candidates(
        self, state: DeviceState, full_trap: int, exclude: tuple[int, ...] = ()
    ) -> list[GenericSwap]:
        """Shuttles that move an end ion of ``full_trap`` to a neighbour with room."""
        device = state.device
        chain = state.chains[full_trap]
        connections = self._tables(device)[1][full_trap]
        candidates: list[GenericSwap] = []
        for neighbour in device.neighbors(full_trap):
            if not state.has_space(neighbour):
                continue
            # The victim sits at the end facing the neighbour (right end
            # faces larger trap ids).
            victim = (chain[-1] if neighbour > full_trap else chain[0]) if chain else None
            if victim is None or victim in exclude:
                continue
            connection = connections[neighbour]
            assert connection is not None
            candidates.append(
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=victim,
                    qubit_b=None,
                    trap=full_trap,
                    target_trap=neighbour,
                    weight=self.shuttle_weight(connection.junctions),
                )
            )
        return candidates

    def candidates_for_gates(
        self, state: DeviceState, gate_qubit_pairs: list[tuple[int, int]]
    ) -> list[GenericSwap]:
        """The candidate set ``S`` of Algorithm 1 for the waiting gates."""
        seen: set[tuple] = set()
        candidates: list[GenericSwap] = []
        for qubit_a, qubit_b in gate_qubit_pairs:
            trap_a = state.trap_of(qubit_a)
            trap_b = state.trap_of(qubit_b)
            if trap_a == trap_b:
                continue
            for qubit, goal in ((qubit_a, trap_b), (qubit_b, trap_a)):
                for candidate in self.candidates_for_qubit(state, qubit, goal):
                    key = (
                        candidate.kind,
                        candidate.qubit_a,
                        candidate.qubit_b,
                        candidate.trap,
                        candidate.target_trap,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(candidate)
        return candidates
