"""Generic swap operations — the paper's unified node-interchange primitive.

Section 3.2 folds every QCCD-specific operation (SWAP gate, intra-trap
reordering, split/move/merge shuttling) into a single *generic swap*: an
interchange of two nodes of the static topology graph.  In the chain
occupancy model used by this implementation, a generic swap is one of:

* ``SWAP_GATE`` — exchange two ions inside one trap (one SWAP gate =
  three two-qubit gates).  Graph weight: ``inner_weight * distance``.
* ``SHUTTLE`` — move an ion sitting at the chain end facing a connected
  trap into that trap (split + move + merge).  Graph weight:
  ``shuttle_weight * (junctions + 1)``.

The candidate generator also proposes *eviction* shuttles (moving an
unrelated ion out of a full destination trap) because a blocked trap
would otherwise deadlock the router — this corresponds to the paper's
Pen term discouraging fully occupied traps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.state import DeviceState
from repro.exceptions import SchedulingError
from repro.hardware.graph import GraphWeights


class GenericSwapKind(str, Enum):
    """The two concrete interchange families of the chain model."""

    SWAP_GATE = "swap_gate"
    SHUTTLE = "shuttle"


@dataclass(frozen=True)
class GenericSwap:
    """One candidate node interchange.

    ``qubit_a`` is always a program qubit.  For ``SWAP_GATE`` candidates
    ``qubit_b`` is the other ion; for ``SHUTTLE`` candidates ``qubit_b``
    is ``None`` and ``target_trap`` names the receiving trap.
    """

    kind: GenericSwapKind
    qubit_a: int
    qubit_b: int | None
    trap: int
    target_trap: int | None
    weight: float

    def __post_init__(self) -> None:
        if self.kind is GenericSwapKind.SWAP_GATE:
            if self.qubit_b is None or self.target_trap is not None:
                raise SchedulingError("a SWAP_GATE candidate needs two qubits and no target trap")
            if self.qubit_a == self.qubit_b:
                raise SchedulingError("a SWAP_GATE candidate needs two distinct qubits")
        else:
            if self.qubit_b is not None or self.target_trap is None:
                raise SchedulingError("a SHUTTLE candidate needs one qubit and a target trap")
            if self.trap == self.target_trap:
                raise SchedulingError("a SHUTTLE candidate must change traps")
        if self.weight <= 0:
            raise SchedulingError("generic swap weights must be positive")

    @property
    def moved_qubits(self) -> tuple[int, ...]:
        """The program qubits whose position changes if this swap is applied."""
        if self.qubit_b is None:
            return (self.qubit_a,)
        return (self.qubit_a, self.qubit_b)

    def reverses(self, other: "GenericSwap | None") -> bool:
        """True when applying this swap right after ``other`` undoes it."""
        if other is None or self.kind != other.kind:
            return False
        if self.kind is GenericSwapKind.SWAP_GATE:
            return {self.qubit_a, self.qubit_b} == {other.qubit_a, other.qubit_b}
        return (
            self.qubit_a == other.qubit_a
            and self.trap == other.target_trap
            and self.target_trap == other.trap
        )


class GenericSwapRules:
    """Candidate generation and weights for generic swaps (§3.1 rules 1–4)."""

    def __init__(self, weights: GraphWeights | None = None) -> None:
        self.weights = weights or GraphWeights()

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def swap_gate_weight(self, chain_distance: int) -> float:
        """Weight of an intra-trap SWAP across ``chain_distance`` positions."""
        if chain_distance < 1:
            raise SchedulingError("a SWAP candidate needs a positive chain distance")
        return self.weights.inner_weight * chain_distance

    def shuttle_weight(self, junctions: int) -> float:
        """Weight of a shuttle crossing ``junctions`` junctions (paper: j+1)."""
        if junctions < 0:
            raise SchedulingError("junction counts cannot be negative")
        return self.weights.shuttle_weight * (1 + junctions)

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def candidates_for_qubit(
        self, state: DeviceState, qubit: int, goal_trap: int
    ) -> list[GenericSwap]:
        """Generic swaps that move ``qubit`` towards ``goal_trap``.

        The set contains:

        * a SWAP with the ion at the departing chain end (brings the
          qubit to the edge in one long-range SWAP),
        * SWAPs with the ions adjacent to the qubit (finer-grained moves
          the heuristic can prefer when the long-range SWAP is costly),
        * a SHUTTLE to the next trap on the cheapest route when the
          qubit already sits at the departing end and the next trap has
          room,
        * eviction SHUTTLEs that free up the next trap when it is full.
        """
        device = state.device
        source_trap = state.trap_of(qubit)
        if source_trap == goal_trap:
            return []
        next_trap = device.next_hop(source_trap, goal_trap)
        departing_end = state.facing_end(source_trap, next_trap)
        candidates: list[GenericSwap] = []

        chain = state.chain(source_trap)
        index = chain.index(qubit)
        # SWAP with the ion at the departing end.
        end_qubit = state.end_qubit(source_trap, departing_end)
        if end_qubit is not None and end_qubit != qubit:
            distance = abs(chain.index(end_qubit) - index)
            candidates.append(
                GenericSwap(
                    GenericSwapKind.SWAP_GATE,
                    qubit_a=qubit,
                    qubit_b=end_qubit,
                    trap=source_trap,
                    target_trap=None,
                    weight=self.swap_gate_weight(distance),
                )
            )
        # SWAP with the immediate neighbour towards the departing end.  Moves
        # away from that end never shorten the route for this qubit, so they
        # are not proposed here (another waiting gate proposes them if they
        # help it instead), which keeps the search from shuffling ions back
        # and forth without progress.
        neighbour_index = index - 1 if departing_end == "left" else index + 1
        if 0 <= neighbour_index < len(chain):
            other = chain[neighbour_index]
            if other != qubit and (end_qubit is None or other != end_qubit):
                candidates.append(
                    GenericSwap(
                        GenericSwapKind.SWAP_GATE,
                        qubit_a=qubit,
                        qubit_b=other,
                        trap=source_trap,
                        target_trap=None,
                        weight=self.swap_gate_weight(1),
                    )
                )
        # SHUTTLE toward the next trap on the route.
        if state.is_at_end(qubit, departing_end):
            connection = device.connection_between(source_trap, next_trap)
            if state.has_space(next_trap):
                candidates.append(
                    GenericSwap(
                        GenericSwapKind.SHUTTLE,
                        qubit_a=qubit,
                        qubit_b=None,
                        trap=source_trap,
                        target_trap=next_trap,
                        weight=self.shuttle_weight(connection.junctions),
                    )
                )
            else:
                candidates.extend(self.eviction_candidates(state, next_trap, exclude=(qubit,)))
        return candidates

    def eviction_candidates(
        self, state: DeviceState, full_trap: int, exclude: tuple[int, ...] = ()
    ) -> list[GenericSwap]:
        """Shuttles that move an end ion of ``full_trap`` to a neighbour with room."""
        device = state.device
        candidates: list[GenericSwap] = []
        for neighbour in device.neighbors(full_trap):
            if not state.has_space(neighbour):
                continue
            end = state.facing_end(full_trap, neighbour)
            victim = state.end_qubit(full_trap, end)
            if victim is None or victim in exclude:
                continue
            connection = device.connection_between(full_trap, neighbour)
            candidates.append(
                GenericSwap(
                    GenericSwapKind.SHUTTLE,
                    qubit_a=victim,
                    qubit_b=None,
                    trap=full_trap,
                    target_trap=neighbour,
                    weight=self.shuttle_weight(connection.junctions),
                )
            )
        return candidates

    def candidates_for_gates(
        self, state: DeviceState, gate_qubit_pairs: list[tuple[int, int]]
    ) -> list[GenericSwap]:
        """The candidate set ``S`` of Algorithm 1 for the waiting gates."""
        seen: set[tuple] = set()
        candidates: list[GenericSwap] = []
        for qubit_a, qubit_b in gate_qubit_pairs:
            trap_a = state.trap_of(qubit_a)
            trap_b = state.trap_of(qubit_b)
            if trap_a == trap_b:
                continue
            for qubit, goal in ((qubit_a, trap_b), (qubit_b, trap_a)):
                for candidate in self.candidates_for_qubit(state, qubit, goal):
                    key = (
                        candidate.kind,
                        candidate.qubit_a,
                        candidate.qubit_b,
                        candidate.trap,
                        candidate.target_trap,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(candidate)
        return candidates
