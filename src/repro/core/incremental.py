"""Incremental (delta-evaluated) machinery of the generic-swap scheduler.

The naive inner loop of Algorithm 1 costs
``O(candidates x (|state| + frontier + lookahead))`` per scheduler tick:
every candidate is applied to a fresh :meth:`DeviceState.copy` and every
frontier/lookahead gate is rescored from scratch.  But a generic swap
moves at most two ions and touches at most two traps, so almost all of
that work is recomputing values that cannot have changed.

This module exploits that locality while staying **bit-for-bit
score-identical** to the reference implementation
(:meth:`HeuristicCost.swap_score`), which the randomized parity suite
asserts:

* :class:`TrapVersions` — a per-trap generation counter bumped whenever
  an applied swap touches a trap; the caches below validate against it
  instead of maintaining reverse indices.
* :class:`IncrementalSwapScorer` — the per-gate score cache: Eq. 2's
  distance term is held per frontier/lookahead gate and carried
  *across* scheduler iterations; after an applied swap only the gates
  touching the moved qubits (or a trap whose fullness changed) are
  rescored, via qubit → gate invalidation.
* :class:`CandidateCache` — memoises ``candidates_for_qubit`` per
  (qubit, goal trap); an entry is regenerated only when its source
  trap, next-hop trap, or (for eviction candidates) a neighbour of the
  next hop was touched.  The enumeration replays the exact candidate
  order and deduplication of
  :meth:`GenericSwapRules.candidates_for_gates`.
What a generic swap can and cannot affect drives all the invalidation
logic here:

* an intra-trap **SWAP** changes the chain positions of exactly its two
  ions — every other gate's score is untouched, and trap fullness (the
  Pen term) cannot change;
* a **shuttle** moves one ion between two traps — gates on that ion
  change, and *cross-trap* gates with an operand in either trap change
  (their ``distance_to_end`` sees a different chain length); gates whose
  operands share a trap are immune to other ions entering or leaving,
  because their chain shifts uniformly and the operand separation is
  preserved.

:class:`IncrementalRun` bundles the caches for one scheduler run.
"""

from __future__ import annotations

from typing import Callable

from repro.core.generic_swap import GenericSwap, GenericSwapRules
from repro.core.heuristic import DecayTracker, HeuristicCost
from repro.core.state import DeviceState
from repro.hardware.device import QCCDDevice

Pair = tuple[int, int]

#: Below this frontier size ``score`` scans the frontier directly; at or
#: above it the per-decay-class cached sort order supplies the minimum
#: over the unchanged gates (the scan would dominate on wide frontiers).
FRONTIER_SCAN_CUTOFF = 8


def make_fast_distance(
    state: DeviceState, device: QCCDDevice, cost: HeuristicCost
) -> Callable[[int, int], float]:
    """A closure computing Eq. 2's ``dis`` term with no method dispatch.

    Binds the live location/position/chain views of ``state`` and the
    device's dense routing tables once per scheduler run; the arithmetic
    replays :meth:`HeuristicCost.pair_distance` operation-for-operation,
    so the returned floats are bit-identical to the reference scorer's.
    """
    locations = state.locations
    positions = state.positions
    chains = state.chains
    distance_matrix, next_hop, penultimate_hop = device.routing_tables
    inner = cost.weights.inner_weight
    shuttle = cost.weights.shuttle_weight

    def fast_distance(qubit_a: int, qubit_b: int) -> float:
        trap_a = locations[qubit_a]
        trap_b = locations[qubit_b]
        position_a = positions[qubit_a]
        if trap_a == trap_b:
            separation = position_a - positions[qubit_b]
            if separation < 0:
                separation = -separation
            if separation > 1:
                separation -= 1
            else:
                separation = 0
            return inner * (separation + 1)
        position_b = positions[qubit_b]
        # distance_to_end towards the hop the shortest route takes
        # (right end faces larger trap ids, as in DeviceState.facing_end).
        hop_a = next_hop[trap_a][trap_b]
        to_end_a = len(chains[trap_a]) - 1 - position_a if hop_a > trap_a else position_a
        hop_b = penultimate_hop[trap_a][trap_b]
        to_end_b = len(chains[trap_b]) - 1 - position_b if hop_b > trap_b else position_b
        return inner * (to_end_a + to_end_b) + shuttle * distance_matrix[trap_a][trap_b]

    return fast_distance


class TrapVersions:
    """Monotonic per-trap generation counters for cache validation."""

    __slots__ = ("generations",)

    def __init__(self, num_traps: int) -> None:
        self.generations = [0] * num_traps

    def touch(self, traps: tuple[int, ...]) -> None:
        """Record that the chains of ``traps`` changed."""
        for trap in traps:
            self.generations[trap] += 1


class CandidateCache:
    """Per-(qubit, goal) memo of ``candidates_for_qubit`` results.

    The cache is *adaptive*: on tiny devices (or frontiers that move
    their qubits every iteration) almost every entry is invalidated
    before it is reused, so after a warm-up window the cache measures
    its own hit rate and bypasses itself when memoisation cannot pay
    for its bookkeeping.  Results are identical either way — only the
    regeneration count changes.
    """

    __slots__ = (
        "_rules",
        "_device",
        "_versions",
        "_entries",
        "_next_hop",
        "_neighbors",
        "_hits",
        "_lookups",
        "_bypass",
    )

    #: Lookups before the hit rate is assessed.
    WARMUP_LOOKUPS = 64
    #: Minimum hit rate for the memo to be worth its overhead.
    MIN_HIT_RATE = 0.25

    def __init__(self, rules: GenericSwapRules, device: QCCDDevice, versions: TrapVersions) -> None:
        self._rules = rules
        self._device = device
        self._versions = versions
        self._next_hop = device.routing_tables[1]
        self._neighbors: list[tuple[int, ...]] = [
            tuple(device.neighbors(trap)) for trap in range(device.num_traps)
        ]
        # (qubit, goal) -> (candidates, dependency traps, their generations)
        self._entries: dict[
            Pair, tuple[tuple[GenericSwap, ...], tuple[int, ...], tuple[int, ...]]
        ] = {}
        self._hits = 0
        self._lookups = 0
        self._bypass = False

    def candidates_for_gates(
        self, state: DeviceState, gate_qubit_pairs: list[Pair]
    ) -> list[GenericSwap]:
        """The candidate set ``S`` of Algorithm 1, with per-qubit memoisation.

        Candidate order and deduplication replay
        :meth:`GenericSwapRules.candidates_for_gates` exactly, so the
        scheduler's tie-breaking (first strictly-better candidate wins)
        is unchanged.
        """
        if self._bypass:
            return self._rules.candidates_for_gates(state, gate_qubit_pairs)
        locations = state.locations
        seen: set[tuple] = set()
        candidates: list[GenericSwap] = []
        for qubit_a, qubit_b in gate_qubit_pairs:
            trap_a = locations[qubit_a]
            trap_b = locations[qubit_b]
            if trap_a == trap_b:
                continue
            for qubit, goal in ((qubit_a, trap_b), (qubit_b, trap_a)):
                for candidate in self._candidates_for_qubit(state, qubit, goal):
                    key = (
                        candidate.kind,
                        candidate.qubit_a,
                        candidate.qubit_b,
                        candidate.trap,
                        candidate.target_trap,
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(candidate)
        return candidates

    def _candidates_for_qubit(
        self, state: DeviceState, qubit: int, goal: int
    ) -> tuple[GenericSwap, ...]:
        generations = self._versions.generations
        key = (qubit, goal)
        lookups = self._lookups = self._lookups + 1
        if lookups == self.WARMUP_LOOKUPS and self._hits < lookups * self.MIN_HIT_RATE:
            self._bypass = True
        entry = self._entries.get(key)
        if entry is not None:
            cached, deps, gens = entry
            for trap, gen in zip(deps, gens):
                if generations[trap] != gen:
                    break
            else:
                self._hits += 1
                return cached
        source = state.locations[qubit]
        if source == goal:
            cached = ()
            deps: tuple[int, ...] = (source,)
        else:
            cached = tuple(self._rules.candidates_for_qubit(state, qubit, goal))
            next_trap = self._next_hop[source][goal]
            # The result depends on the source chain, the next hop's
            # fullness, and — only when the next hop is full and eviction
            # shuttles were proposed — the fullness of its neighbours.
            deps = (source, next_trap)
            if not state.has_space(next_trap):
                deps += self._neighbors[next_trap]
        self._entries[key] = (cached, deps, tuple(generations[trap] for trap in deps))
        return cached


class IncrementalSwapScorer:
    """Delta evaluation of ``H(swap)`` (Eq. 1) over one scheduler iteration.

    ``begin_iteration`` snapshots the frontier/lookahead distances,
    each pair's trap pair, the per-gate decay factors and — for wide frontiers — a
    per-decay-class sort order of the frontier scores.  ``score``
    realises a candidate's hypothetical placement (a SWAP by swapping
    two entries of the live position index, a shuttle by applying and
    reverting the move on the live state), rescores only the gates the
    move can affect, and reads everything else from the snapshot — no
    state copy, no full rescore.
    """

    __slots__ = (
        "_distance",
        "_locations",
        "_positions",
        "_chains",
        "_capacities",
        "_full_traps",
        "_base_penalty",
        "_frontier_pairs",
        "_lookahead_pairs",
        "_lookahead_weight",
        "_frontier_dis",
        "_lookahead_dis",
        "_frontier_traps",
        "_lookahead_traps",
        "_lookahead_qubits",
        "_base_future",
        "_factors",
        "_ordered_by_factor",
        "_revision",
        "_pending_qubits",
        "_pending_traps",
        "_groups_dirty",
    )

    def __init__(self, state: DeviceState, device: QCCDDevice, cost: HeuristicCost) -> None:
        self._distance = make_fast_distance(state, device, cost)
        self._locations = state.locations
        self._positions = state.positions
        self._chains = state.chains
        self._capacities = state.capacities
        self._full_traps = state.full_trap_count
        self._base_penalty = 0.0
        self._frontier_pairs: list[Pair] = []
        self._lookahead_pairs: list[Pair] = []
        self._lookahead_weight = 0.0
        self._frontier_dis: list[float] = []
        self._lookahead_dis: list[float] = []
        self._frontier_traps: list[Pair] = []
        self._lookahead_traps: list[Pair] = []
        self._lookahead_qubits: set[int] = set()
        self._base_future: float | None = None
        self._factors: list[float] = []
        self._ordered_by_factor: dict[float, list[tuple[float, int]]] = {}
        self._revision = -1
        self._pending_qubits: set[int] = set()
        self._pending_traps: set[int] = set()
        self._groups_dirty = True

    # ------------------------------------------------------------------
    # cache invalidation
    # ------------------------------------------------------------------
    def notify_applied(self, candidate: GenericSwap) -> None:
        """Record what an applied swap invalidates for the next iteration.

        The per-gate distance snapshots survive across iterations; at
        the next :meth:`begin_iteration` only the affected gates are
        rescored (the qubit → gate invalidation of the score cache).
        """
        if candidate.qubit_b is None:
            self._pending_qubits.add(candidate.qubit_a)
            self._pending_traps.add(candidate.trap)
            self._pending_traps.add(candidate.target_trap)  # type: ignore[arg-type]
        else:
            self._pending_qubits.add(candidate.qubit_a)
            self._pending_qubits.add(candidate.qubit_b)

    # ------------------------------------------------------------------
    # per-iteration snapshot
    # ------------------------------------------------------------------
    def begin_iteration(
        self,
        frontier_pairs: list[Pair],
        decay: DecayTracker,
        lookahead_pairs: list[Pair] | None,
        lookahead_weight: float,
        revision: int,
    ) -> None:
        """Prepare the snapshots for scoring this iteration's candidates.

        ``revision`` is the dependency DAG's revision: while it is
        unchanged the frontier and lookahead pair lists are the same
        objects, so the distance snapshots are only *patched* for the
        gates affected by swaps applied since the last iteration, not
        rebuilt.
        """
        if revision != self._revision:
            self._frontier_pairs = frontier_pairs
            self._lookahead_pairs = lookahead_pairs or []
            self._lookahead_weight = lookahead_weight
            self._rebuild()
            self._revision = revision
            self._pending_qubits.clear()
            self._pending_traps.clear()
        elif self._pending_qubits or self._pending_traps:
            self._patch()
        self._base_future = None
        self._base_penalty = float(self._full_traps())

        factors = decay.factors(self._frontier_pairs)
        if len(self._frontier_pairs) < FRONTIER_SCAN_CUTOFF:
            self._factors = factors
        elif self._groups_dirty or factors != self._factors:
            self._factors = factors
            ordered: dict[float, list[tuple[float, int]]] = {}
            setdefault = ordered.setdefault
            for index, dis in enumerate(self._frontier_dis):
                setdefault(factors[index], []).append((dis, index))
            for entries in ordered.values():
                entries.sort()
            self._ordered_by_factor = ordered
            self._groups_dirty = False

    def _rebuild(self) -> None:
        """Recompute the full per-revision snapshot (frontier changed)."""
        distance = self._distance
        locations = self._locations
        self._frontier_dis = [distance(a, b) for a, b in self._frontier_pairs]
        self._lookahead_dis = [distance(a, b) for a, b in self._lookahead_pairs]
        self._frontier_traps = [(locations[a], locations[b]) for a, b in self._frontier_pairs]
        self._lookahead_traps = [(locations[a], locations[b]) for a, b in self._lookahead_pairs]
        lookahead_qubits: set[int] = set()
        for qubit_a, qubit_b in self._lookahead_pairs:
            lookahead_qubits.add(qubit_a)
            lookahead_qubits.add(qubit_b)
        self._lookahead_qubits = lookahead_qubits
        self._groups_dirty = True

    def _patch(self) -> None:
        """Rescore only the gates affected by recently applied swaps."""
        qubits = self._pending_qubits
        traps = self._pending_traps
        if self._patch_section(
            qubits, traps, self._frontier_pairs, self._frontier_dis, self._frontier_traps
        ):
            self._groups_dirty = True
        self._patch_section(
            qubits, traps, self._lookahead_pairs, self._lookahead_dis, self._lookahead_traps
        )
        qubits.clear()
        traps.clear()

    def _patch_section(
        self,
        qubits: set[int],
        traps: set[int],
        pairs: list[Pair],
        dis: list[float],
        trap_pairs: list[Pair],
    ) -> bool:
        """Refresh the entries the applied swaps may have changed."""
        distance = self._distance
        locations = self._locations
        changed = False
        for index, (qubit_a, qubit_b) in enumerate(pairs):
            if qubit_a in qubits or qubit_b in qubits:
                affected = True
            else:
                trap_a, trap_b = trap_pairs[index]
                affected = trap_a != trap_b and (trap_a in traps or trap_b in traps)
            if affected:
                dis[index] = distance(qubit_a, qubit_b)
                trap_pairs[index] = (locations[qubit_a], locations[qubit_b])
                changed = True
        return changed

    # ------------------------------------------------------------------
    # per-candidate evaluation
    # ------------------------------------------------------------------
    def score(self, state: DeviceState, candidate: GenericSwap) -> float:
        """H(swap) for ``candidate``, bit-identical to the reference scorer."""
        swap_qubit_a = candidate.qubit_a
        swap_qubit_b = candidate.qubit_b
        positions = self._positions
        penalty = self._base_penalty
        is_shuttle = swap_qubit_b is None
        if is_shuttle:
            source = candidate.trap
            target = candidate.target_trap
            chains = self._chains
            capacities = self._capacities
            # Penalty delta without a recount: the source frees a slot,
            # the target may fill its last one.
            if len(chains[source]) == capacities[source]:
                penalty -= 1.0
            if len(chains[target]) + 1 == capacities[target]:  # type: ignore[index]
                penalty += 1.0
            state.unchecked_shuttle(swap_qubit_a, source, target)  # type: ignore[arg-type]
        else:
            position_a = positions[swap_qubit_a]
            position_b = positions[swap_qubit_b]
            positions[swap_qubit_a] = position_b
            positions[swap_qubit_b] = position_a
        try:
            distance = self._distance
            factors = self._factors
            frontier_pairs = self._frontier_pairs
            frontier_dis = self._frontier_dis
            best = float("inf")
            if len(frontier_pairs) < FRONTIER_SCAN_CUTOFF:
                # Narrow frontier: one fused pass deciding per gate
                # whether the snapshot still applies.
                frontier_traps = self._frontier_traps
                for index, (qubit_a, qubit_b) in enumerate(frontier_pairs):
                    if is_shuttle:
                        trap_a, trap_b = frontier_traps[index]
                        affected = (
                            qubit_a == swap_qubit_a
                            or qubit_b == swap_qubit_a
                            or (
                                trap_a != trap_b
                                and (trap_a == source or trap_a == target or trap_b == source or trap_b == target)
                            )
                        )
                    else:
                        affected = (
                            qubit_a == swap_qubit_a
                            or qubit_a == swap_qubit_b
                            or qubit_b == swap_qubit_a
                            or qubit_b == swap_qubit_b
                        )
                    dis = distance(qubit_a, qubit_b) if affected else frontier_dis[index]
                    score = (dis + penalty) * factors[index]
                    if score < best:
                        best = score
            else:
                touched = self._affected_frontier(candidate, is_shuttle)
                for index in touched:
                    qubit_a, qubit_b = frontier_pairs[index]
                    score = (distance(qubit_a, qubit_b) + penalty) * factors[index]
                    if score < best:
                        best = score
                # The minimum over the *unchanged* gates comes from the
                # cached per-decay-class order: (dis + Pen) * factor is
                # strictly increasing in dis for a fixed factor, so the
                # first untouched entry of each class realises that
                # class's minimum.
                for factor, ordered in self._ordered_by_factor.items():
                    for dis, index in ordered:
                        if index in touched:
                            continue
                        score = (dis + penalty) * factor
                        if score < best:
                            best = score
                        break
            total = best + candidate.weight

            lookahead_pairs = self._lookahead_pairs
            if lookahead_pairs and self._lookahead_weight > 0.0:
                lookahead_dis = self._lookahead_dis
                if (
                    not is_shuttle
                    and swap_qubit_a not in self._lookahead_qubits
                    and swap_qubit_b not in self._lookahead_qubits
                ):
                    # The SWAP touches no lookahead gate: the base sum
                    # is the whole term.
                    future = self._base_future
                    if future is None:
                        future = 0.0
                        for dis in lookahead_dis:
                            future += dis
                        self._base_future = future
                    total += self._lookahead_weight * (future / len(lookahead_pairs))
                    return total
                # Base-plus-deltas (the reference scorer's definition):
                # start from the cached in-order base sum and add the
                # per-gate differences in index order.  A recomputed but
                # unchanged gate contributes an exact 0.0, so how
                # conservative the affected test is cannot change the
                # float.
                future = self._base_future
                if future is None:
                    future = 0.0
                    for dis in lookahead_dis:
                        future += dis
                    self._base_future = future
                lookahead_traps = self._lookahead_traps
                for index, (qubit_a, qubit_b) in enumerate(lookahead_pairs):
                    if is_shuttle:
                        if qubit_a == swap_qubit_a or qubit_b == swap_qubit_a:
                            affected = True
                        else:
                            trap_a, trap_b = lookahead_traps[index]
                            affected = trap_a != trap_b and (
                                trap_a == source or trap_a == target or trap_b == source or trap_b == target
                            )
                    else:
                        affected = (
                            qubit_a == swap_qubit_a
                            or qubit_a == swap_qubit_b
                            or qubit_b == swap_qubit_a
                            or qubit_b == swap_qubit_b
                        )
                    if affected:
                        after = distance(qubit_a, qubit_b)
                        before = lookahead_dis[index]
                        if after != before:
                            future += after - before
                total += self._lookahead_weight * (future / len(lookahead_pairs))
        finally:
            if is_shuttle:
                state.unchecked_shuttle(swap_qubit_a, target, source)  # type: ignore[arg-type]
            else:
                positions[swap_qubit_a] = position_a
                positions[swap_qubit_b] = position_b
        return total

    def _affected_frontier(self, candidate: GenericSwap, is_shuttle: bool) -> set[int]:
        """Frontier indices whose score the candidate may change (wide path)."""
        affected: set[int] = set()
        swap_qubit_a = candidate.qubit_a
        swap_qubit_b = candidate.qubit_b
        if is_shuttle:
            source = candidate.trap
            target = candidate.target_trap
            for index, (qubit_a, qubit_b) in enumerate(self._frontier_pairs):
                if qubit_a == swap_qubit_a or qubit_b == swap_qubit_a:
                    affected.add(index)
                    continue
                trap_a, trap_b = self._frontier_traps[index]
                if trap_a != trap_b and (
                    trap_a == source or trap_a == target or trap_b == source or trap_b == target
                ):
                    affected.add(index)
        else:
            for index, (qubit_a, qubit_b) in enumerate(self._frontier_pairs):
                if (
                    qubit_a == swap_qubit_a
                    or qubit_a == swap_qubit_b
                    or qubit_b == swap_qubit_a
                    or qubit_b == swap_qubit_b
                ):
                    affected.add(index)
        return affected


class IncrementalRun:
    """The per-run cache bundle handed through the scheduling loop.

    Bound to the run's *working* state object: the fast distance closure
    and the score caches read its live views, so the bundle must not be
    reused with a different state.
    """

    __slots__ = ("versions", "scorer", "candidates")

    def __init__(
        self,
        state: DeviceState,
        device: QCCDDevice,
        rules: GenericSwapRules,
        cost: HeuristicCost,
    ) -> None:
        self.versions = TrapVersions(device.num_traps)
        self.scorer = IncrementalSwapScorer(state, device, cost)
        self.candidates = CandidateCache(rules, device, self.versions)

    def notify_applied(self, candidate: GenericSwap) -> None:
        """Invalidate caches after ``candidate`` was applied for real."""
        self.versions.touch(candidate.touched_traps)
        self.scorer.notify_applied(candidate)
