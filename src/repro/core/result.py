"""Compilation result container returned by every compiler in this library."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scheduler import SchedulerStatistics
from repro.core.state import DeviceState
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class CompilationResult:
    """Everything produced by compiling one circuit onto one device.

    Attributes
    ----------
    schedule:
        The ordered operation log (gates, SWAPs, shuttles).
    initial_state:
        Qubit placement before the first operation.
    final_state:
        Qubit placement after the last operation.
    compiler_name:
        Which compiler produced this result (``"s-sync"``, ``"murali"``,
        ``"dai"``).
    mapping_name:
        Which first-level initial mapping was used.
    compile_time_s:
        Wall-clock compilation time in seconds.
    statistics:
        Scheduler-internal counters (S-SYNC only; baselines leave the
        defaults).
    """

    schedule: Schedule
    initial_state: DeviceState
    final_state: DeviceState
    compiler_name: str
    mapping_name: str
    compile_time_s: float
    statistics: SchedulerStatistics = field(default_factory=SchedulerStatistics)

    # Convenience pass-throughs for the paper's headline metrics.
    @property
    def shuttle_count(self) -> int:
        """Number of shuttles in the compiled schedule (Fig. 8 metric)."""
        return self.schedule.shuttle_count

    @property
    def swap_count(self) -> int:
        """Number of inserted SWAP gates (Fig. 9 metric)."""
        return self.schedule.swap_count

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of program two-qubit gates executed."""
        return self.schedule.two_qubit_gate_count

    def summary(self) -> dict[str, object]:
        """A flat dictionary for tabular reporting."""
        return {
            "circuit": self.schedule.circuit_name,
            "device": self.schedule.device.name,
            "compiler": self.compiler_name,
            "mapping": self.mapping_name,
            "shuttles": self.shuttle_count,
            "swaps": self.swap_count,
            "two_qubit_gates": self.two_qubit_gate_count,
            "compile_time_s": self.compile_time_s,
        }
