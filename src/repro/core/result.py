"""Compilation result container returned by every compiler in this library."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.core.scheduler import SchedulerStatistics
from repro.core.state import DeviceState
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class PassTiming:
    """Wall-time and statistics of one pipeline pass.

    Attributes
    ----------
    name:
        The pass name (``"initial-mapping"``, ``"routing"``, ...).
    wall_time_s:
        Wall-clock seconds the pass spent in :meth:`Pass.run`.
    statistics:
        Pass-specific counters reported via :meth:`Pass.statistics`
        (plain JSON-serialisable values only).
    """

    name: str
    wall_time_s: float
    statistics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat plain-data form for serialisation."""
        return {
            "name": self.name,
            "wall_time_s": self.wall_time_s,
            "statistics": dict(self.statistics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PassTiming":
        """Rebuild a timing from :meth:`as_dict` output."""
        return cls(
            name=str(data["name"]),
            wall_time_s=float(data["wall_time_s"]),
            statistics=dict(data.get("statistics", {})),
        )


@dataclass(frozen=True)
class CompilationResult:
    """Everything produced by compiling one circuit onto one device.

    Attributes
    ----------
    schedule:
        The ordered operation log (gates, SWAPs, shuttles).
    initial_state:
        Qubit placement before the first operation.
    final_state:
        Qubit placement after the last operation.
    compiler_name:
        Which compiler produced this result (``"s-sync"``, ``"murali"``,
        ``"dai"``, or any name registered via
        :func:`repro.registry.register_compiler`).
    mapping_name:
        Which first-level initial mapping was used.
    compile_time_s:
        Wall-clock compilation time in seconds.
    statistics:
        Scheduler-internal counters (the S-SYNC search counters; baseline
        pipelines fill the executed-gate count and leave the rest at 0).
    pass_timings:
        Per-pass wall time and statistics recorded by the
        :class:`~repro.pipeline.CompilerPipeline` that produced this
        result (empty for results built outside a pipeline).
    """

    schedule: Schedule
    initial_state: DeviceState
    final_state: DeviceState
    compiler_name: str
    mapping_name: str
    compile_time_s: float
    statistics: SchedulerStatistics = field(default_factory=SchedulerStatistics)
    pass_timings: tuple[PassTiming, ...] = ()

    # Convenience pass-throughs for the paper's headline metrics.
    @property
    def shuttle_count(self) -> int:
        """Number of shuttles in the compiled schedule (Fig. 8 metric)."""
        return self.schedule.shuttle_count

    @property
    def swap_count(self) -> int:
        """Number of inserted SWAP gates (Fig. 9 metric)."""
        return self.schedule.swap_count

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of program two-qubit gates executed."""
        return self.schedule.two_qubit_gate_count

    def statistics_dict(self) -> dict[str, int]:
        """The scheduler statistics as a plain dictionary."""
        return asdict(self.statistics)

    def summary(self) -> dict[str, object]:
        """A flat dictionary for tabular reporting."""
        return {
            "circuit": self.schedule.circuit_name,
            "device": self.schedule.device.name,
            "compiler": self.compiler_name,
            "mapping": self.mapping_name,
            "shuttles": self.shuttle_count,
            "swaps": self.swap_count,
            "two_qubit_gates": self.two_qubit_gate_count,
            "compile_time_s": self.compile_time_s,
        }

    def as_dict(self) -> dict[str, object]:
        """Full flat record: summary plus statistics and per-pass timings.

        This is the shape the JSON/CSV export helpers in
        :mod:`repro.analysis.reporting` pick up (they call ``as_dict()``
        on any record), so scheduler statistics and pipeline timings
        survive into exported result files.
        """
        row = self.summary()
        row.update(self.statistics_dict())
        row["pass_timings"] = [timing.as_dict() for timing in self.pass_timings]
        return row
